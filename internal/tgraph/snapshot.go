package tgraph

import (
	"sort"

	"triclust/internal/sparse"
	"triclust/internal/text"
)

// Snapshot is the tripartite graph of one time window with users
// compacted to the window's active set — the shape Algorithm 2 consumes.
type Snapshot struct {
	// Graph holds Xp (n_t×l), Xu/Xr/Gu over the *local* user indexing.
	Graph *Graph
	// Active maps local user index → global user index.
	Active []int
	// TweetIdx maps local tweet index → global tweet index.
	TweetIdx []int
	// Corpus is the sliced sub-corpus (users still global; tweets local).
	Corpus *Corpus
}

// SnapshotBuilder builds snapshots with reusable scratch state: the
// window slice, the local-user index map, the compacted corpus buffers
// and — since the allocation-free ingest overhaul — the triplet builders
// and CSR backing arrays of all four graph matrices. A long-lived session
// that builds one snapshot per batch therefore reaches a steady state
// where Build performs no heap allocation beyond the Active/TweetIdx
// index slices that escape into the caller's results.
//
// Everything else the returned Snapshot points at — the Graph, its
// matrices, and the Corpus — aliases the builder's internal buffers and
// is only valid until the next Build call. Callers that need an owning
// snapshot use BuildSnapshot (which dedicates a fresh builder per call).
// A builder is not safe for concurrent use.
type SnapshotBuilder struct {
	local   map[int]int
	users   []User
	tweets  []Tweet
	compact Corpus

	// Window-slicing scratch.
	tweetLocal map[int]int
	userSeen   map[int]struct{}

	// Graph-construction arena.
	docs  [][]string
	owner []int
	fs    text.FeatureScratch
	xp    *sparse.CSR
	xu    *sparse.CSR
	xr    *sparse.CSR
	gu    *sparse.CSR
	coo   sparse.COO
	graph Graph
	snap  Snapshot
}

// Build slices c to tweets with Time in [from, to) and builds its
// tripartite graph with a shared vocabulary (required so Sf(t) matrices
// are comparable across snapshots) and users renumbered to the active set.
//
// The returned Snapshot's Active and TweetIdx slices are freshly
// allocated; the Snapshot itself, its Graph/matrices and its Corpus alias
// the builder's internal buffers and are only valid until the next Build.
func (b *SnapshotBuilder) Build(c *Corpus, from, to int, vocab *text.Vocabulary, w text.Weighting) *Snapshot {
	// Window slice (Corpus.Slice with reusable buffers): select tweets,
	// remap batch-local retweet targets, collect the active user set.
	if b.tweetLocal == nil {
		b.tweetLocal = make(map[int]int)
		b.userSeen = make(map[int]struct{})
		b.local = make(map[int]int)
	} else {
		clear(b.tweetLocal)
		clear(b.userSeen)
		clear(b.local)
	}
	tweetIdx := make([]int, 0, len(c.Tweets))
	for i, tw := range c.Tweets {
		if tw.Time >= from && tw.Time < to {
			b.tweetLocal[i] = len(tweetIdx)
			tweetIdx = append(tweetIdx, i)
		}
	}
	b.tweets = b.tweets[:0]
	for _, g := range tweetIdx {
		tw := c.Tweets[g]
		if tw.RetweetOf >= 0 {
			if l, ok := b.tweetLocal[tw.RetweetOf]; ok {
				tw.RetweetOf = l
			} else {
				tw.RetweetOf = -1 // original fell outside the window
			}
		}
		b.userSeen[tw.User] = struct{}{}
		b.tweets = append(b.tweets, tw)
	}
	active := make([]int, 0, len(b.userSeen))
	for u := range b.userSeen {
		active = append(active, u)
	}
	sort.Ints(active)
	for i, g := range active {
		b.local[g] = i
	}

	// Re-home tweets onto local user indices in a compacted corpus copy
	// backed by the builder's reusable buffers.
	b.users = b.users[:0]
	for _, g := range active {
		b.users = append(b.users, c.Users[g])
	}
	for i := range b.tweets {
		b.tweets[i].User = b.local[b.tweets[i].User]
	}
	b.compact = Corpus{Users: b.users, Tweets: b.tweets}

	b.buildGraphInto(vocab, w)
	b.snap = Snapshot{Graph: &b.graph, Active: active, TweetIdx: tweetIdx, Corpus: &b.compact}
	return &b.snap
}

// buildGraphInto is tgraph.Build over the builder's compacted corpus,
// emitting every matrix into the builder's reusable CSR backing.
func (b *SnapshotBuilder) buildGraphInto(vocab *text.Vocabulary, w text.Weighting) {
	c := &b.compact
	n, m := c.NumTweets(), c.NumUsers()

	b.docs = b.docs[:0]
	for i := range c.Tweets {
		b.docs = append(b.docs, c.Tweets[i].Tokens)
	}
	b.xp = b.fs.DocFeatureMatrixInto(b.xp, b.docs, vocab, w)

	b.owner = b.owner[:0]
	for i := range c.Tweets {
		b.owner = append(b.owner, c.Tweets[i].User)
	}
	b.xu = b.fs.UserFeatureMatrixInto(b.xu, b.xp, b.owner, m)

	b.coo.Reset(m, n)
	for i, tw := range c.Tweets {
		b.coo.Add(tw.User, i, 1)
		if tw.RetweetOf >= 0 {
			b.coo.Add(tw.User, tw.RetweetOf, 1)
		}
	}
	b.xr = b.coo.ToCSRInto(b.xr)
	// A user either interacted with a tweet or did not: clamp the
	// accumulated incidence counts (posted + retweeted sums to 2) to 1.
	b.xr.FillValues(1)

	b.coo.Reset(m, m)
	for _, tw := range c.Tweets {
		if tw.RetweetOf >= 0 {
			orig := c.Tweets[tw.RetweetOf]
			// The retweeting user connects to the original author in the
			// user–user graph (both directions; the Laplacian regularizer
			// treats Gu as undirected).
			if orig.User != tw.User {
				b.coo.Add(tw.User, orig.User, 1)
				b.coo.Add(orig.User, tw.User, 1)
			}
		}
	}
	b.gu = b.coo.ToCSRInto(b.gu)

	b.graph = Graph{Xp: b.xp, Xu: b.xu, Xr: b.xr, Gu: b.gu, Vocab: vocab}
}

// BuildSnapshot is the one-shot convenience over SnapshotBuilder.Build;
// its Snapshot owns all of its memory (the builder is dedicated to it and
// never reused).
func BuildSnapshot(c *Corpus, from, to int, vocab *text.Vocabulary, w text.Weighting) *Snapshot {
	b := new(SnapshotBuilder)
	s := b.Build(c, from, to, vocab, w)
	// Detach the corpus from the transient builder so the snapshot
	// outlives any accidental reuse.
	s.Corpus = &Corpus{
		Users:  append([]User(nil), b.users...),
		Tweets: append([]Tweet(nil), b.tweets...),
	}
	return s
}

// SnapshotSeries builds one snapshot per timestamp step in [lo, hi] using
// a single vocabulary constructed from the whole corpus (minDF applied
// globally). step is the window width in time units (1 = per day).
// Empty windows produce snapshots with zero tweets.
func SnapshotSeries(c *Corpus, step, minDF int, w text.Weighting) []*Snapshot {
	lo, hi, ok := c.TimeRange()
	if !ok {
		return nil
	}
	if step < 1 {
		step = 1
	}
	if minDF < 1 {
		minDF = 1
	}
	vocab := text.BuildVocabulary(c.TokenDocs(), minDF)
	var out []*Snapshot
	for t := lo; t <= hi; t += step {
		out = append(out, BuildSnapshot(c, t, t+step, vocab, w))
	}
	return out
}
