package tgraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// corpusJSON is the on-disk schema (versioned for forward compatibility).
type corpusJSON struct {
	Version int     `json:"version"`
	Users   []User  `json:"users"`
	Tweets  []Tweet `json:"tweets"`
}

const corpusVersion = 1

// WriteJSON serializes a corpus.
func WriteJSON(w io.Writer, c *Corpus) error {
	enc := json.NewEncoder(w)
	return enc.Encode(corpusJSON{Version: corpusVersion, Users: c.Users, Tweets: c.Tweets})
}

// ReadJSON deserializes a corpus and validates it.
func ReadJSON(r io.Reader) (*Corpus, error) {
	var cj corpusJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cj); err != nil {
		return nil, fmt.Errorf("tgraph: decode corpus: %w", err)
	}
	if cj.Version != corpusVersion {
		return nil, fmt.Errorf("tgraph: unsupported corpus version %d", cj.Version)
	}
	c := &Corpus{Users: cj.Users, Tweets: cj.Tweets}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
