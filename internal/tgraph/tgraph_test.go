package tgraph

import (
	"reflect"
	"testing"

	"triclust/internal/text"
)

// tiny corpus: 2 users, 3 tweets, tweet 2 retweets tweet 0.
func tinyCorpus() *Corpus {
	return &Corpus{
		Users: []User{{Name: "alice", Label: 0}, {Name: "bob", Label: 1}},
		Tweets: []Tweet{
			{Tokens: []string{"yeson37", "label"}, User: 0, Time: 1, RetweetOf: -1, Label: 0},
			{Tokens: []string{"noprop37", "cost"}, User: 1, Time: 1, RetweetOf: -1, Label: 1},
			{Tokens: []string{"yeson37"}, User: 1, Time: 2, RetweetOf: 0, Label: 0},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tinyCorpus().Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateBadUser(t *testing.T) {
	c := tinyCorpus()
	c.Tweets[0].User = 9
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for bad user index")
	}
}

func TestValidateSelfRetweet(t *testing.T) {
	c := tinyCorpus()
	c.Tweets[1].RetweetOf = 1
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for self retweet")
	}
}

func TestTimeRange(t *testing.T) {
	lo, hi, ok := tinyCorpus().TimeRange()
	if !ok || lo != 1 || hi != 2 {
		t.Fatalf("TimeRange = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := (&Corpus{}).TimeRange(); ok {
		t.Fatal("empty corpus should report !ok")
	}
}

func TestTokenizeFillsOnlyNil(t *testing.T) {
	c := &Corpus{
		Users: []User{{}},
		Tweets: []Tweet{
			{Text: "Support #prop37 now", User: 0, RetweetOf: -1},
			{Tokens: []string{"preset"}, Text: "ignored text", User: 0, RetweetOf: -1},
		},
	}
	c.Tokenize(text.NewTokenizer(text.DefaultTokenizerOptions()))
	if !reflect.DeepEqual(c.Tweets[0].Tokens, []string{"support", "prop37"}) {
		t.Fatalf("tokens = %v", c.Tweets[0].Tokens)
	}
	if !reflect.DeepEqual(c.Tweets[1].Tokens, []string{"preset"}) {
		t.Fatal("preset tokens overwritten")
	}
}

func TestLabelVectors(t *testing.T) {
	c := tinyCorpus()
	if !reflect.DeepEqual(c.TweetLabels(), []int{0, 1, 0}) {
		t.Fatalf("TweetLabels = %v", c.TweetLabels())
	}
	if !reflect.DeepEqual(c.UserLabels(), []int{0, 1}) {
		t.Fatalf("UserLabels = %v", c.UserLabels())
	}
}

func TestSliceRemapsTweetsAndRetweets(t *testing.T) {
	c := tinyCorpus()
	sub, idx := c.Slice(2, 3)
	if len(sub.Tweets) != 1 || idx[0] != 2 {
		t.Fatalf("Slice returned %d tweets, idx %v", len(sub.Tweets), idx)
	}
	// tweet 2's retweet target (0) is outside the window → dropped.
	if sub.Tweets[0].RetweetOf != -1 {
		t.Fatalf("RetweetOf = %d, want -1", sub.Tweets[0].RetweetOf)
	}

	both, _ := c.Slice(1, 3)
	if len(both.Tweets) != 3 {
		t.Fatalf("full slice = %d tweets", len(both.Tweets))
	}
	if both.Tweets[2].RetweetOf != 0 {
		t.Fatalf("in-window retweet should remap, got %d", both.Tweets[2].RetweetOf)
	}
}

func TestActiveUsers(t *testing.T) {
	c := tinyCorpus()
	if !reflect.DeepEqual(c.ActiveUsers(), []int{0, 1}) {
		t.Fatalf("ActiveUsers = %v", c.ActiveUsers())
	}
	sub, _ := c.Slice(2, 3)
	if !reflect.DeepEqual(sub.ActiveUsers(), []int{1}) {
		t.Fatalf("sliced ActiveUsers = %v", sub.ActiveUsers())
	}
}

func TestCategorizeUsers(t *testing.T) {
	newU, evolving, disappeared := CategorizeUsers([]int{1, 2, 3}, []int{2, 3, 4})
	if !reflect.DeepEqual(newU, []int{4}) {
		t.Fatalf("new = %v", newU)
	}
	if !reflect.DeepEqual(evolving, []int{2, 3}) {
		t.Fatalf("evolving = %v", evolving)
	}
	if !reflect.DeepEqual(disappeared, []int{1}) {
		t.Fatalf("disappeared = %v", disappeared)
	}
}

func TestCategorizeUsersEmptyPrev(t *testing.T) {
	newU, evolving, disappeared := CategorizeUsers(nil, []int{0, 1})
	if len(newU) != 2 || len(evolving) != 0 || len(disappeared) != 0 {
		t.Fatalf("got %v %v %v", newU, evolving, disappeared)
	}
}

func TestBuildShapes(t *testing.T) {
	g := Build(tinyCorpus(), BuildOptions{Weighting: text.TF, MinDF: 1})
	if g.Xp.Rows() != 3 || g.Xp.Cols() != g.Vocab.Len() {
		t.Fatalf("Xp %dx%d", g.Xp.Rows(), g.Xp.Cols())
	}
	if g.Xu.Rows() != 2 || g.Xu.Cols() != g.Vocab.Len() {
		t.Fatalf("Xu %dx%d", g.Xu.Rows(), g.Xu.Cols())
	}
	if g.Xr.Rows() != 2 || g.Xr.Cols() != 3 {
		t.Fatalf("Xr %dx%d", g.Xr.Rows(), g.Xr.Cols())
	}
	if g.Gu.Rows() != 2 || g.Gu.Cols() != 2 {
		t.Fatalf("Gu %dx%d", g.Gu.Rows(), g.Gu.Cols())
	}
}

func TestBuildContent(t *testing.T) {
	g := Build(tinyCorpus(), BuildOptions{Weighting: text.TF, MinDF: 1})
	jYes := g.Vocab.ID("yeson37")
	jNo := g.Vocab.ID("noprop37")
	if jYes < 0 || jNo < 0 {
		t.Fatal("vocabulary missing planted words")
	}
	if g.Xp.At(0, jYes) != 1 || g.Xp.At(1, jNo) != 1 {
		t.Fatal("Xp misses token counts")
	}
	// User 1 posted tweets 1 and 2 → features of both.
	if g.Xu.At(1, jNo) != 1 || g.Xu.At(1, jYes) != 1 {
		t.Fatalf("Xu aggregation wrong: %v", g.Xu.ToDense())
	}
	// Xr: user1 interacted with tweets 1, 2 and (via retweet) 0.
	if g.Xr.At(1, 0) != 1 || g.Xr.At(1, 1) != 1 || g.Xr.At(1, 2) != 1 {
		t.Fatalf("Xr wrong: %v", g.Xr.ToDense())
	}
	if g.Xr.At(0, 0) != 1 || g.Xr.At(0, 1) != 0 {
		t.Fatalf("Xr row0 wrong: %v", g.Xr.ToDense())
	}
	// Gu: symmetric edge between user 1 (retweeter) and user 0 (author).
	if g.Gu.At(0, 1) != 1 || g.Gu.At(1, 0) != 1 {
		t.Fatalf("Gu wrong: %v", g.Gu.ToDense())
	}
	if g.Gu.At(0, 0) != 0 {
		t.Fatal("Gu self loop")
	}
}

func TestBuildXrBinaryEvenWithRepeats(t *testing.T) {
	c := tinyCorpus()
	// Duplicate the retweet so user 1 touches tweet 0 twice.
	c.Tweets = append(c.Tweets, Tweet{Tokens: []string{"yeson37"}, User: 1, Time: 3, RetweetOf: 0, Label: 0})
	g := Build(c, BuildOptions{Weighting: text.TF, MinDF: 1})
	if g.Xr.At(1, 0) != 1 {
		t.Fatalf("Xr not binary: %v", g.Xr.At(1, 0))
	}
	// Gu accumulates interaction counts instead.
	if g.Gu.At(1, 0) != 2 {
		t.Fatalf("Gu weight = %v, want 2", g.Gu.At(1, 0))
	}
}

func TestBuildSharedVocab(t *testing.T) {
	fixed := text.NewVocabulary()
	fixed.AddWord("yeson37")
	g := Build(tinyCorpus(), BuildOptions{Weighting: text.TF, Vocab: fixed})
	if g.Vocab.Len() != 1 {
		t.Fatalf("vocab not shared: %d words", g.Vocab.Len())
	}
	if g.Xp.Cols() != 1 {
		t.Fatalf("Xp cols = %d", g.Xp.Cols())
	}
}

func TestBuildMinDFPrunes(t *testing.T) {
	g := Build(tinyCorpus(), BuildOptions{Weighting: text.TF, MinDF: 2})
	// Only "yeson37" appears in ≥ 2 tweets.
	if g.Vocab.Len() != 1 || g.Vocab.ID("yeson37") < 0 {
		t.Fatalf("minDF pruning wrong: %v", g.Vocab.Words())
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	g := Build(&Corpus{}, DefaultBuildOptions())
	if g.Xp.Rows() != 0 || g.Xu.Rows() != 0 || g.Xr.NNZ() != 0 || g.Gu.NNZ() != 0 {
		t.Fatal("empty corpus should yield empty graph")
	}
}
