package tgraph

import (
	"testing"

	"triclust/internal/text"
)

func builderCorpus() *Corpus {
	return &Corpus{
		Users: []User{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Tweets: []Tweet{
			{Tokens: []string{"love", "win"}, User: 0, Time: 0, RetweetOf: -1, Label: NoLabel},
			{Tokens: []string{"hate", "lose"}, User: 2, Time: 0, RetweetOf: -1, Label: NoLabel},
			{Tokens: []string{"love", "lose"}, User: 1, Time: 1, RetweetOf: -1, Label: NoLabel},
			{Tokens: []string{"win", "win"}, User: 2, Time: 1, RetweetOf: 1, Label: NoLabel},
		},
	}
}

// TestSnapshotBuilderMatchesOneShot checks the reusable builder produces
// the same graphs as the one-shot BuildSnapshot across successive windows.
func TestSnapshotBuilderMatchesOneShot(t *testing.T) {
	c := builderCorpus()
	vocab := text.BuildVocabulary(c.TokenDocs(), 1)
	var b SnapshotBuilder
	for _, window := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		got := b.Build(c, window[0], window[1], vocab, text.TF)
		want := BuildSnapshot(c, window[0], window[1], vocab, text.TF)
		if got.Graph.Xp.NNZ() != want.Graph.Xp.NNZ() ||
			got.Graph.Xp.Rows() != want.Graph.Xp.Rows() {
			t.Fatalf("window %v: Xp mismatch", window)
		}
		if len(got.Active) != len(want.Active) {
			t.Fatalf("window %v: active mismatch %v vs %v", window, got.Active, want.Active)
		}
		for i := range got.Active {
			if got.Active[i] != want.Active[i] {
				t.Fatalf("window %v: active[%d] %d vs %d", window, i, got.Active[i], want.Active[i])
			}
		}
		if got.Graph.Gu.NNZ() != want.Graph.Gu.NNZ() {
			t.Fatalf("window %v: Gu mismatch", window)
		}
	}
}

// TestSnapshotBuilderReusesBuffers checks the builder's compact corpus is
// rebuilt in place: the second Build overwrites, not appends.
func TestSnapshotBuilderReusesBuffers(t *testing.T) {
	c := builderCorpus()
	vocab := text.BuildVocabulary(c.TokenDocs(), 1)
	var b SnapshotBuilder
	s0 := b.Build(c, 0, 1, vocab, text.TF)
	if n := len(s0.Corpus.Tweets); n != 2 {
		t.Fatalf("window 0 has %d tweets", n)
	}
	s1 := b.Build(c, 1, 2, vocab, text.TF)
	if n := len(s1.Corpus.Tweets); n != 2 {
		t.Fatalf("window 1 has %d tweets, buffers not reset", n)
	}
	// Local user remapping still correct on reuse.
	for _, tw := range s1.Corpus.Tweets {
		if tw.User < 0 || tw.User >= len(s1.Active) {
			t.Fatalf("tweet user %d out of local range %d", tw.User, len(s1.Active))
		}
	}
}
