package tgraph

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions configure ReadCSV.
type CSVOptions struct {
	// Comma is the field separator ('\t' for TSV); 0 means ','.
	Comma rune
	// HasHeader skips the first record.
	HasHeader bool
	// TimeDivisor converts raw integer timestamps to the model's
	// granularity (e.g. 86400 turns unix seconds into days); 0 means 1.
	TimeDivisor int
}

// ReadCSV ingests a tweet stream in the common export layout
//
//	user,time,text[,retweet_of[,label]]
//
// where user is a free-form screen name (interned in order of first
// appearance), time is an integer timestamp, retweet_of is the 0-based
// index of an earlier row (-1 or empty for none), and label is
// pos/neg/neu (or empty / "-" for unlabeled). It returns a validated
// corpus; tweet text remains untokenized (call Corpus.Tokenize or let
// triclust.Fit do it).
func ReadCSV(r io.Reader, opts CSVOptions) (*Corpus, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1 // allow optional trailing columns
	div := opts.TimeDivisor
	if div <= 0 {
		div = 1
	}

	c := &Corpus{}
	userIdx := map[string]int{}
	intern := func(name string) int {
		if id, ok := userIdx[name]; ok {
			return id
		}
		id := len(c.Users)
		userIdx[name] = id
		c.Users = append(c.Users, User{Name: name, Label: NoLabel})
		return id
	}

	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tgraph: csv line %d: %w", line+1, err)
		}
		line++
		if opts.HasHeader && line == 1 {
			continue
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("tgraph: csv line %d: want ≥3 fields, got %d", line, len(rec))
		}
		ts, err := strconv.Atoi(strings.TrimSpace(rec[1]))
		if err != nil {
			return nil, fmt.Errorf("tgraph: csv line %d: bad time %q", line, rec[1])
		}
		tw := Tweet{
			User:      intern(strings.TrimSpace(rec[0])),
			Time:      ts / div,
			Text:      rec[2],
			RetweetOf: -1,
			Label:     NoLabel,
		}
		if len(rec) >= 4 {
			f := strings.TrimSpace(rec[3])
			if f != "" && f != "-" && f != "-1" {
				rt, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("tgraph: csv line %d: bad retweet_of %q", line, rec[3])
				}
				tw.RetweetOf = rt
			}
		}
		if len(rec) >= 5 {
			lab, err := ParseLabel(rec[4])
			if err != nil {
				return nil, fmt.Errorf("tgraph: csv line %d: %w", line, err)
			}
			tw.Label = lab
		}
		c.Tweets = append(c.Tweets, tw)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseLabel maps a textual sentiment label to a class index: pos/neg/neu
// (any case, also "positive"/"negative"/"neutral" and "+"/"0"/"-"
// spellings); empty, "-" and "unlabeled" map to NoLabel.
func ParseLabel(s string) (int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "pos", "positive", "+", "yes":
		return 0, nil
	case "neg", "negative", "no":
		return 1, nil
	case "neu", "neutral", "0":
		return 2, nil
	case "", "-", "unlabeled", "none":
		return NoLabel, nil
	default:
		return 0, fmt.Errorf("tgraph: unknown label %q", s)
	}
}

// WriteCSV emits the corpus in the ReadCSV layout (with header and both
// optional columns), so corpora can round-trip through spreadsheets.
func WriteCSV(w io.Writer, c *Corpus, comma rune) error {
	cw := csv.NewWriter(w)
	if comma != 0 {
		cw.Comma = comma
	}
	if err := cw.Write([]string{"user", "time", "text", "retweet_of", "label"}); err != nil {
		return err
	}
	labelName := func(l int) string {
		switch l {
		case 0:
			return "pos"
		case 1:
			return "neg"
		case 2:
			return "neu"
		default:
			return "-"
		}
	}
	for _, tw := range c.Tweets {
		text := tw.Text
		if text == "" && len(tw.Tokens) > 0 {
			text = strings.Join(tw.Tokens, " ")
		}
		rec := []string{
			c.Users[tw.User].Name,
			strconv.Itoa(tw.Time),
			text,
			strconv.Itoa(tw.RetweetOf),
			labelName(tw.Label),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
