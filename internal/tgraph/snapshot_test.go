package tgraph

import (
	"reflect"
	"testing"

	"triclust/internal/text"
)

func snapVocab() *text.Vocabulary {
	v := text.NewVocabulary()
	for _, w := range []string{"yeson37", "noprop37", "cost", "label"} {
		v.AddWord(w)
	}
	return v
}

func TestBuildSnapshotCompactsUsers(t *testing.T) {
	c := tinyCorpus()
	s := BuildSnapshot(c, 2, 3, snapVocab(), text.TF)
	// Only tweet 2 (user 1) is in day 2.
	if !reflect.DeepEqual(s.Active, []int{1}) {
		t.Fatalf("Active = %v", s.Active)
	}
	if !reflect.DeepEqual(s.TweetIdx, []int{2}) {
		t.Fatalf("TweetIdx = %v", s.TweetIdx)
	}
	if s.Graph.Xp.Rows() != 1 || s.Graph.Xu.Rows() != 1 || s.Graph.Xr.Rows() != 1 {
		t.Fatalf("snapshot dims wrong: Xp %d Xu %d Xr %d",
			s.Graph.Xp.Rows(), s.Graph.Xu.Rows(), s.Graph.Xr.Rows())
	}
	// Local corpus re-homed the tweet to local user 0.
	if s.Corpus.Tweets[0].User != 0 {
		t.Fatalf("local user = %d", s.Corpus.Tweets[0].User)
	}
	if s.Corpus.Users[0].Name != "bob" {
		t.Fatalf("compacted user = %q", s.Corpus.Users[0].Name)
	}
}

func TestBuildSnapshotSharedVocabulary(t *testing.T) {
	c := tinyCorpus()
	v := snapVocab()
	a := BuildSnapshot(c, 1, 2, v, text.TF)
	b := BuildSnapshot(c, 2, 3, v, text.TF)
	if a.Graph.Xp.Cols() != v.Len() || b.Graph.Xp.Cols() != v.Len() {
		t.Fatal("snapshots do not share the vocabulary width")
	}
}

func TestBuildSnapshotEmptyWindow(t *testing.T) {
	c := tinyCorpus()
	s := BuildSnapshot(c, 50, 60, snapVocab(), text.TF)
	if s.Graph.Xp.Rows() != 0 || len(s.Active) != 0 || len(s.TweetIdx) != 0 {
		t.Fatal("empty window should give empty snapshot")
	}
}

func TestSnapshotSeriesCoversRange(t *testing.T) {
	c := tinyCorpus() // times 1..2
	series := SnapshotSeries(c, 1, 1, text.TF)
	if len(series) != 2 {
		t.Fatalf("series length = %d, want 2", len(series))
	}
	if series[0].Graph.Xp.Rows() != 2 || series[1].Graph.Xp.Rows() != 1 {
		t.Fatalf("per-day rows: %d, %d", series[0].Graph.Xp.Rows(), series[1].Graph.Xp.Rows())
	}
	// All snapshots share one vocabulary.
	if series[0].Graph.Xp.Cols() != series[1].Graph.Xp.Cols() {
		t.Fatal("vocabulary differs across the series")
	}
}

func TestSnapshotSeriesStepAndDefaults(t *testing.T) {
	c := tinyCorpus()
	series := SnapshotSeries(c, 0 /* clamped to 1 */, 0 /* minDF→1 */, text.TF)
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	wide := SnapshotSeries(c, 5, 1, text.TF)
	if len(wide) != 1 || wide[0].Graph.Xp.Rows() != 3 {
		t.Fatalf("step-5 series wrong: %d snapshots", len(wide))
	}
}

func TestSnapshotSeriesEmptyCorpus(t *testing.T) {
	if got := SnapshotSeries(&Corpus{}, 1, 1, text.TF); got != nil {
		t.Fatalf("empty corpus series = %v", got)
	}
}
