package engine

import "triclust/internal/mat"

// Sentiment is one item's inferred class with its soft membership weight —
// the output of the pipeline's labeling stage.
type Sentiment struct {
	// Class is the argmax cluster (aligned to the lexicon classes when a
	// prior is used).
	Class int
	// Confidence is the normalized membership weight of Class in [0,1].
	Confidence float64
}

// Label is stage 6: it turns the rows of a factor matrix into hard classes
// with normalized confidences.
func Label(f *mat.Dense) []Sentiment {
	out := make([]Sentiment, f.Rows())
	for i := range out {
		out[i] = labelRow(f.Row(i), f.Cols())
	}
	return out
}

// LabelRow labels one membership row (e.g. a stored user estimate).
func LabelRow(row []float64) Sentiment {
	return labelRow(row, len(row))
}

func labelRow(row []float64, k int) Sentiment {
	var sum, best float64
	cls := 0
	for j, v := range row {
		sum += v
		if v > best {
			best, cls = v, j
		}
	}
	conf := 0.0
	if sum > 0 {
		conf = best / sum
	} else if k > 0 {
		conf = 1 / float64(k)
	}
	return Sentiment{Class: cls, Confidence: conf}
}
