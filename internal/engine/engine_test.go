package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"triclust/internal/synth"
	"triclust/internal/tgraph"
)

func tweetKey(tw tgraph.Tweet) string {
	return fmt.Sprintf("%d|%d|%s", tw.Time, tw.User, strings.Join(tw.Tokens, " "))
}

func sortSentiments(s []Sentiment) {
	sort.Slice(s, func(a, b int) bool {
		if s[a].Class != s[b].Class {
			return s[a].Class < s[b].Class
		}
		return s[a].Confidence < s[b].Confidence
	})
}

func testDataset(t testing.TB, seed int64) *synth.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.NumUsers = 40
	cfg.Days = 6
	cfg.ElectionDay = 4
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return d
}

func dayBatch(d *synth.Dataset, day int) []tgraph.Tweet {
	var batch []tgraph.Tweet
	for _, tw := range d.Corpus.Tweets {
		if tw.Time == day {
			tw.RetweetOf = -1
			batch = append(batch, tw)
		}
	}
	return batch
}

func fastConfig() Config {
	cfg := Config{}
	cfg = cfg.withDefaults()
	cfg.Online.MaxIter = 12
	return cfg
}

func TestFitCorpusPipeline(t *testing.T) {
	d := testDataset(t, 1)
	m := NewModel(fastConfig())
	out, err := m.FitCorpus(d.Corpus)
	if err != nil {
		t.Fatalf("FitCorpus: %v", err)
	}
	if len(out.TweetSentiments) != d.Corpus.NumTweets() {
		t.Fatalf("tweet sentiments %d, want %d", len(out.TweetSentiments), d.Corpus.NumTweets())
	}
	if len(out.UserSentiments) != d.Corpus.NumUsers() {
		t.Fatal("user sentiment count wrong")
	}
	if v := m.Vocabulary(); v == nil || len(out.FeatureSentiments) != v.Len() {
		t.Fatal("vocabulary not frozen or feature sentiment mismatch")
	}
	if m.Prior() == nil {
		t.Fatal("prior not built")
	}
	for _, s := range out.TweetSentiments {
		if s.Confidence < 0 || s.Confidence > 1 {
			t.Fatalf("confidence %v out of range", s.Confidence)
		}
	}
}

// TestPriorBuiltOncePerVocabulary asserts the Sf0 prior is cached: the
// accessor is pointer-stable and allocation-free after the freeze.
func TestPriorBuiltOncePerVocabulary(t *testing.T) {
	d := testDataset(t, 2)
	m := NewModel(fastConfig())
	sess := m.NewSession(d.Corpus.Users)
	if m.Prior() != nil {
		t.Fatal("prior exists before vocabulary freeze")
	}
	day := 0
	for ; day < 6; day++ {
		if len(dayBatch(d, day)) > 0 {
			break
		}
	}
	if _, err := sess.Process(day, dayBatch(d, day)); err != nil {
		t.Fatal(err)
	}
	p1 := m.Prior()
	if p1 == nil {
		t.Fatal("prior missing after first batch")
	}
	if avg := testing.AllocsPerRun(100, func() {
		if m.Prior() != p1 {
			t.Fatal("prior rebuilt")
		}
	}); avg != 0 {
		t.Fatalf("Prior allocates %.1f times per call", avg)
	}
	// The session's problem skeleton must carry exactly the cached prior.
	if sess.prob.Sf0 != p1 {
		t.Fatal("session problem does not reuse the cached prior")
	}
	if _, err := sess.Process(day+1, dayBatch(d, day+1)); err != nil {
		t.Fatal(err)
	}
	if m.Prior() != p1 {
		t.Fatal("prior rebuilt on second batch")
	}
	if sess.prob.Sf0 != p1 {
		t.Fatal("second batch did not reuse the cached prior")
	}
}

// TestSessionEmptyBatchIsNoOp asserts an empty batch neither freezes the
// vocabulary nor consumes the timestamp.
func TestSessionEmptyBatchIsNoOp(t *testing.T) {
	d := testDataset(t, 3)
	m := NewModel(fastConfig())
	sess := m.NewSession(d.Corpus.Users)
	out, err := sess.Process(0, nil)
	if err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	if !out.Skipped {
		t.Fatal("empty batch not marked skipped")
	}
	if len(out.TweetSentiments) != 0 || len(out.Active) != 0 {
		t.Fatal("empty batch produced sentiments")
	}
	if m.Vocabulary() != nil {
		t.Fatal("empty batch froze the vocabulary")
	}
	if sess.Skipped() != 1 || sess.Batches() != 0 {
		t.Fatalf("counters: skipped=%d batches=%d", sess.Skipped(), sess.Batches())
	}
	// The same timestamp is still available to a later real batch.
	day := 0
	var batch []tgraph.Tweet
	for ; day < 6; day++ {
		if batch = dayBatch(d, day); len(batch) > 0 {
			break
		}
	}
	out, err = sess.Process(0, batch)
	if err != nil {
		t.Fatalf("batch after skip errored: %v", err)
	}
	if out.Skipped || len(out.TweetSentiments) != len(batch) {
		t.Fatal("real batch mislabeled after skip")
	}
	if v := m.Vocabulary(); v == nil || v.Len() == 0 {
		t.Fatal("vocabulary not frozen from first real batch")
	}
}

// TestSessionOrderIndependence processes the same batches through two
// fresh sessions, one with tweets permuted, and requires identical
// per-input-tweet results.
func TestSessionOrderIndependence(t *testing.T) {
	d := testDataset(t, 4)
	mA := NewModel(fastConfig())
	sA := mA.NewSession(d.Corpus.Users)
	mB := NewModel(fastConfig())
	sB := mB.NewSession(d.Corpus.Users)
	rng := rand.New(rand.NewSource(7))

	processed := 0
	for day := 0; day < 6 && processed < 3; day++ {
		batch := dayBatch(d, day)
		if len(batch) == 0 {
			continue
		}
		perm := rng.Perm(len(batch))
		shuffled := make([]tgraph.Tweet, len(batch))
		for i, p := range perm {
			shuffled[p] = batch[i]
		}
		outA, err := sA.Process(day, batch)
		if err != nil {
			t.Fatal(err)
		}
		outB, err := sB.Process(day, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		// outA's result for batch[i] must equal outB's for shuffled[perm[i]].
		// Tweets with identical (Time, User, Tokens) are interchangeable,
		// so duplicate groups are compared as multisets.
		groupA, groupB := map[string][]Sentiment{}, map[string][]Sentiment{}
		for i, tw := range batch {
			k := tweetKey(tw)
			groupA[k] = append(groupA[k], outA.TweetSentiments[i])
			groupB[k] = append(groupB[k], outB.TweetSentiments[perm[i]])
		}
		for k, as := range groupA {
			bs := groupB[k]
			sortSentiments(as)
			sortSentiments(bs)
			if len(as) != len(bs) {
				t.Fatalf("day %d group %q: %d vs %d results", day, k, len(as), len(bs))
			}
			for i := range as {
				if as[i] != bs[i] {
					t.Fatalf("day %d group %q: %+v vs %+v under permutation", day, k, as[i], bs[i])
				}
			}
		}
		if len(outA.UserSentiments) != len(outB.UserSentiments) {
			t.Fatal("user sentiment counts differ under permutation")
		}
		for i := range outA.UserSentiments {
			if outA.Active[i] != outB.Active[i] || outA.UserSentiments[i] != outB.UserSentiments[i] {
				t.Fatalf("day %d user row %d differs under permutation", day, i)
			}
		}
		processed++
	}
	if processed < 2 {
		t.Fatalf("only %d days processed", processed)
	}
}

// TestSessionOrderIndependenceWithRetweets covers the canonical-key
// tie-break: two tweets identical in (Time, User, Tokens) but retweeting
// different targets must keep their own results under permutation.
func TestSessionOrderIndependenceWithRetweets(t *testing.T) {
	users := []tgraph.User{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	base := []tgraph.Tweet{
		{Tokens: []string{"love", "win", "great"}, User: 0, Time: 0, RetweetOf: -1, Label: tgraph.NoLabel},
		{Tokens: []string{"hate", "awful", "scam"}, User: 1, Time: 0, RetweetOf: -1, Label: tgraph.NoLabel},
		// Identical content, different retweet targets.
		{Tokens: []string{"agree"}, User: 2, Time: 0, RetweetOf: 0, Label: tgraph.NoLabel},
		{Tokens: []string{"agree"}, User: 2, Time: 0, RetweetOf: 1, Label: tgraph.NoLabel},
	}
	perm := []int{3, 0, 2, 1} // shuffled[perm[i]] = base[i], targets remapped
	shuffled := make([]tgraph.Tweet, len(base))
	for i, p := range perm {
		tw := base[i]
		if tw.RetweetOf >= 0 {
			tw.RetweetOf = perm[tw.RetweetOf]
		}
		shuffled[p] = tw
	}
	cfg := fastConfig()
	cfg.MinDF = 1
	sA := NewModel(cfg).NewSession(users)
	sB := NewModel(cfg).NewSession(users)
	outA, err := sA.Process(0, base)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := sB.Process(0, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if a, b := outA.TweetSentiments[i], outB.TweetSentiments[perm[i]]; a != b {
			t.Fatalf("tweet %d: %+v vs %+v under permutation", i, a, b)
		}
	}
}

// TestSessionsConcurrent runs two sessions of one shared Model from
// separate goroutines (go test -race covers the locking).
func TestSessionsConcurrent(t *testing.T) {
	d := testDataset(t, 5)
	m := NewModel(fastConfig())
	sessions := []*Session{m.NewSession(d.Corpus.Users), m.NewSession(d.Corpus.Users)}

	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	counts := make([]int, len(sessions))
	for si, sess := range sessions {
		wg.Add(1)
		go func(si int, sess *Session) {
			defer wg.Done()
			for day := 0; day < 6; day++ {
				batch := dayBatch(d, day)
				out, err := sess.Process(day, batch)
				if err != nil {
					errs[si] = err
					return
				}
				if !out.Skipped {
					counts[si]++
				}
			}
		}(si, sess)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", si, err)
		}
	}
	if counts[0] < 2 || counts[0] != counts[1] {
		t.Fatalf("batch counts %v", counts)
	}
	// Both sessions share one frozen vocabulary and prior.
	if m.Vocabulary() == nil || m.Prior() == nil {
		t.Fatal("shared artifacts missing")
	}
	if sessions[0].prob.Sf0 != sessions[1].prob.Sf0 {
		t.Fatal("sessions hold different priors")
	}
}

// TestSessionUserEstimate checks history-backed estimates surface through
// the session facade.
func TestSessionUserEstimate(t *testing.T) {
	d := testDataset(t, 6)
	m := NewModel(fastConfig())
	sess := m.NewSession(d.Corpus.Users)
	var seenUser int = -1
	for day := 0; day < 6; day++ {
		batch := dayBatch(d, day)
		if len(batch) == 0 {
			continue
		}
		if _, err := sess.Process(day, batch); err != nil {
			t.Fatal(err)
		}
		if seenUser < 0 {
			seenUser = batch[0].User
		}
	}
	est, ok := sess.UserEstimate(seenUser)
	if !ok {
		t.Fatal("no estimate for an active user")
	}
	if est.Confidence < 0 || est.Confidence > 1 {
		t.Fatalf("confidence %v", est.Confidence)
	}
	if _, ok := sess.UserEstimate(len(d.Corpus.Users) + 3); ok {
		t.Fatal("estimate for unknown user")
	}
}
