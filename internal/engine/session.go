package engine

import (
	"slices"
	"sort"
	"sync"

	"triclust/internal/conform"
	"triclust/internal/core"
	"triclust/internal/mat"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// Session is the per-topic mutable half of the pipeline: the online solver
// (Algorithm 2) with its user history, a reusable core.Problem skeleton
// and the snapshot-construction scratch buffers. A Session serializes its
// own Process calls with an internal mutex, so it is safe to share;
// independent sessions (even of the same Model) run concurrently.
//
// In steady state a batch allocates only its escaping results: tokens are
// interned byte-slices resolved into reused per-tweet buffers, the
// snapshot graph is built into the SnapshotBuilder's arena, the lexicon
// prior is the Model's cached Sf0, the Problem value is Reset in place
// and the solver draws its temporaries from a persistent workspace.
type Session struct {
	mu    sync.Mutex
	model *Model
	users []tgraph.User

	online *core.Online
	prob   core.Problem
	sb     tgraph.SnapshotBuilder

	// Reusable per-batch buffers.
	order   []int // order[r] = caller index of canonical row r
	pos     []int // pos[callerIdx] = canonical row
	sorted  []tgraph.Tweet
	docs    [][]string
	batch   tgraph.Corpus
	in      *text.Interner
	toks    [][]string // toks[callerIdx] = tokens (caller's or session-owned)
	tokBufs [][]string // per-index reusable token buffers backing toks
	sorter  canonSorter
	userTw  []int // per-user tweet counts (zeroed after every batch)

	// prof is the stream-conformance profile; it accumulates and scores
	// in every mode, cmode only decides what a quarantine verdict does.
	prof  *conform.Profile
	cmode conform.Mode

	batches int
	skips   int
}

// NewSession derives a stream over a fixed user universe: tweets in later
// batches refer to users by index into users. The slice is copied.
func (m *Model) NewSession(users []tgraph.User) *Session {
	return &Session{
		model:  m,
		users:  append([]tgraph.User(nil), users...),
		online: core.NewOnline(m.cfg),
		in:     text.NewInterner(),
		prof:   conform.NewProfile(m.conformP),
	}
}

// Model returns the session's shared frozen artifacts.
func (s *Session) Model() *Model { return s.model }

// Batches returns the number of non-empty batches processed.
func (s *Session) Batches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// Skipped returns the number of empty batches skipped.
func (s *Session) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skips
}

// NumUsers returns the size of the session's user universe.
func (s *Session) NumUsers() int { return len(s.users) }

// LastTime returns the timestamp of the most recent non-empty batch, or
// ok = false before the first one. Unlike a caller-side high-water mark
// it survives ExportState/RestoreSession.
func (s *Session) LastTime() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.online.LastTime()
}

// Progress returns the session's replay fingerprint: the non-empty batch
// count and the solver's position in its replayable random stream. A
// journal records it after each batch so recovery can verify that replay
// reproduced the original run exactly.
func (s *Session) Progress() (batches int, randDraws uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches, s.online.RandDraws()
}

// KnownUsers returns the number of users with recorded history.
func (s *Session) KnownUsers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.online.KnownUsers()
}

// UserEstimate returns the most recent sentiment estimate for a user, or
// ok = false if the user has never appeared.
func (s *Session) UserEstimate(user int) (Sentiment, bool) {
	s.mu.Lock()
	row := s.online.LastUserEstimate(user)
	s.mu.Unlock()
	if row == nil {
		return Sentiment{}, false
	}
	return LabelRow(row), true
}

// Process runs one online step (Algorithm 2) on the batch of tweets with
// timestamp t. Timestamps must strictly increase across non-empty batches;
// the first non-empty batch freezes the Model's vocabulary. An empty batch
// is a well-defined no-op: it returns a Skipped outcome without freezing
// the vocabulary, consuming the timestamp or touching user history.
//
// Within a batch the result is independent of tweet ordering: tweets are
// canonicalized (by time, user, tokens, retweet-target content) before
// the solver runs and the outcome is scattered back to the caller's
// ordering. Tweets identical under that whole key are interchangeable.
// The caller's tweets are never mutated; tweets without Tokens are
// tokenized into session-owned buffers.
func (s *Session) Process(t int, tweets []tgraph.Tweet) (*Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Stage 0–1: validate and tokenize against the caller's ordering
	// (RetweetOf indices refer to positions in tweets).
	s.batch = tgraph.Corpus{Users: s.users, Tweets: tweets}
	if err := s.batch.Validate(); err != nil {
		return nil, err
	}
	if len(tweets) == 0 {
		s.skips++
		return skippedOutcome(), nil
	}
	s.tokenize(tweets)

	// Canonical ordering for order-independent batch semantics.
	s.canonicalize(tweets)

	// Conformance gate: score the batch against the profile of the
	// batches before it, before any state can advance — an enforce-mode
	// rejection must leave the vocabulary unfrozen, the timestamp
	// unconsumed and the profile untouched, so the caller can retry.
	obs := s.observation(t)
	verdict, scored := s.prof.Score(obs)
	if scored && verdict.Status == conform.Quarantined && s.cmode == conform.Enforce {
		return nil, &conform.BatchError{Verdict: verdict}
	}

	// Stage 2: the first batch freezes the vocabulary (and the prior).
	s.docs = s.docs[:0]
	for _, tw := range s.sorted {
		s.docs = append(s.docs, tw.Tokens)
	}
	vocab := s.model.EnsureVocabulary(s.docs)

	// Stage 3: snapshot graph over the batch's time window.
	lo, hi := timeBounds(tweets)
	s.batch.Tweets = s.sorted
	snap := s.sb.Build(&s.batch, lo, hi+1, vocab, s.model.weighting)

	// Stage 4–5: cached prior, problem skeleton reset in place, solve.
	s.prob.Reset(snap.Graph.Xp, snap.Graph.Xu, snap.Graph.Xr, snap.Graph.Gu, s.model.Prior())
	res, err := s.online.Step(t, &s.prob, snap.Active)
	if err != nil {
		return nil, err
	}

	// Scatter the tweet factor back to the caller's ordering so the
	// public contract (rows follow the input) survives canonicalization.
	res.Sp = permuteRows(res.Sp, s.order)

	s.batches++
	// The batch was applied: fold it into the conformance profile (and,
	// when it was scored, the verdict counters — flag-mode semantics
	// record even quarantine verdicts of applied batches).
	if scored {
		s.prof.Observe(obs, &verdict)
	} else {
		s.prof.Observe(obs, nil)
	}
	// Stage 6: label.
	out := newOutcome(res, snap.Active)
	if scored {
		out.Conform = &verdict
	}
	return out, nil
}

// observation reduces the canonicalized batch (s.sorted, already
// tokenized) to the numbers the conformance invariants watch. Called
// with the session lock held, before the vocabulary can freeze on this
// batch — OOV counting starts only once earlier batches froze it.
func (s *Session) observation(t int) conform.Observation {
	o := conform.Observation{Tweets: len(s.sorted)}
	vocab := s.model.Vocabulary()
	o.OOVValid = vocab != nil
	for i := range s.sorted {
		toks := s.sorted[i].Tokens
		o.Tokens += len(toks)
		if vocab != nil {
			for _, tok := range toks {
				if vocab.ID(tok) < 0 {
					o.OOVTokens++
				}
			}
		}
	}
	if len(s.userTw) < len(s.users) {
		s.userTw = make([]int, len(s.users))
	}
	for i := range s.sorted {
		u := s.sorted[i].User
		s.userTw[u]++
		if s.userTw[u] > o.MaxUserTweets {
			o.MaxUserTweets = s.userTw[u]
		}
	}
	for i := range s.sorted {
		s.userTw[s.sorted[i].User] = 0
	}
	for i := 1; i < len(s.sorted); i++ {
		a, b := &s.sorted[i-1], &s.sorted[i]
		if a.Time == b.Time && a.User == b.User && slices.Equal(a.Tokens, b.Tokens) {
			o.Dups++
		}
	}
	if last, ok := s.online.LastTime(); ok {
		o.TimeStep, o.StepValid = t-last, true
	}
	// s.sorted is ordered by Time first, so the spread is last minus first.
	o.TimeSpread = s.sorted[len(s.sorted)-1].Time - s.sorted[0].Time
	return o
}

// SetConformMode sets what a quarantine verdict does on this session's
// ingest path (see conform.Mode). The mode is runtime-only state: it is
// not exported with the profile, and switching it never changes what the
// profile accumulates.
func (s *Session) SetConformMode(m conform.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cmode = m
}

// ConformMode returns the session's conformance mode.
func (s *Session) ConformMode() conform.Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cmode
}

// tokenize fills s.toks[i] with tweet i's feature tokens: the tweet's own
// Tokens when pre-tokenized, otherwise the text run through the model's
// tokenizer into a session-owned reused buffer with interned strings.
func (s *Session) tokenize(tweets []tgraph.Tweet) {
	n := len(tweets)
	if cap(s.toks) < n {
		s.toks = make([][]string, n)
	}
	s.toks = s.toks[:n]
	for len(s.tokBufs) < n {
		s.tokBufs = append(s.tokBufs, nil)
	}
	tok := s.model.tok
	for i := range tweets {
		if tweets[i].Tokens != nil {
			s.toks[i] = tweets[i].Tokens
			continue
		}
		buf := tok.AppendTokens(s.tokBufs[i][:0], tweets[i].Text, s.in)
		s.tokBufs[i] = buf
		s.toks[i] = buf
	}
}

// canonSorter stable-sorts the order permutation without the reflection
// scaffolding of sort.SliceStable (which allocates per call).
type canonSorter struct {
	s      *Session
	tweets []tgraph.Tweet
}

func (c *canonSorter) Len() int      { return len(c.s.order) }
func (c *canonSorter) Swap(a, b int) { o := c.s.order; o[a], o[b] = o[b], o[a] }
func (c *canonSorter) Less(a, b int) bool {
	s, tweets := c.s, c.tweets
	ai, bi := s.order[a], s.order[b]
	if cmp := s.compareTweet(tweets, ai, bi); cmp != 0 {
		return cmp < 0
	}
	// Tie-break by retweet-target *content* (not its batch-local index,
	// which depends on the input ordering): tweets that agree on
	// (Time, User, Tokens) but retweet different targets carry different
	// Xr edges and must not be treated as interchangeable.
	n := len(tweets)
	at, bt := tweets[ai].RetweetOf, tweets[bi].RetweetOf
	aHas, bHas := at >= 0 && at < n, bt >= 0 && bt < n
	if aHas != bHas {
		return !aHas // plain tweets sort before retweets
	}
	if aHas {
		return s.compareTweet(tweets, at, bt) < 0
	}
	return false
}

// canonicalize fills s.order with a permutation of [0,n) sorted by
// (Time, User, Tokens) and s.sorted with the correspondingly reordered
// tweets, remapping batch-local RetweetOf indices through the permutation.
func (s *Session) canonicalize(tweets []tgraph.Tweet) {
	n := len(tweets)
	s.order = s.order[:0]
	for i := 0; i < n; i++ {
		s.order = append(s.order, i)
	}
	s.sorter = canonSorter{s: s, tweets: tweets}
	sort.Stable(&s.sorter)
	s.sorter = canonSorter{}
	s.pos = s.pos[:0]
	for range tweets {
		s.pos = append(s.pos, 0)
	}
	for r, ci := range s.order {
		s.pos[ci] = r
	}
	s.sorted = s.sorted[:0]
	for _, ci := range s.order {
		tw := tweets[ci]
		tw.Tokens = s.toks[ci]
		if tw.RetweetOf >= 0 && tw.RetweetOf < n {
			tw.RetweetOf = s.pos[tw.RetweetOf]
		}
		s.sorted = append(s.sorted, tw)
	}
}

// compareTweet orders tweets by (Time, User, Tokens), the content-derived
// part of the canonical key. Tokens come from s.toks, so untokenized
// callers sort by the same features the graph will see.
func (s *Session) compareTweet(tweets []tgraph.Tweet, a, b int) int {
	ta, tb := &tweets[a], &tweets[b]
	if ta.Time != tb.Time {
		if ta.Time < tb.Time {
			return -1
		}
		return 1
	}
	if ta.User != tb.User {
		if ta.User < tb.User {
			return -1
		}
		return 1
	}
	return slices.Compare(s.toks[a], s.toks[b])
}

// permuteRows returns a matrix whose row callerIdx[r] is src's row r.
func permuteRows(src *mat.Dense, callerIdx []int) *mat.Dense {
	out := mat.NewDense(src.Rows(), src.Cols())
	for r := 0; r < src.Rows(); r++ {
		copy(out.Row(callerIdx[r]), src.Row(r))
	}
	return out
}

func timeBounds(tweets []tgraph.Tweet) (lo, hi int) {
	lo, hi = tweets[0].Time, tweets[0].Time
	for _, tw := range tweets[1:] {
		if tw.Time < lo {
			lo = tw.Time
		}
		if tw.Time > hi {
			hi = tw.Time
		}
	}
	return lo, hi
}
