// Package engine decomposes the tri-clustering pipeline into explicit,
// reusable stages wired around two long-lived types:
//
//   - Model holds the frozen per-topic artifacts: the tokenizer, the
//     vocabulary (fixed once so Sf(t) matrices stay comparable across
//     snapshots), the cached lexicon prior Sf0, and the solver
//     configuration. A Model is safe for concurrent use once built; the
//     vocabulary freezes exactly once.
//   - Session holds the per-topic mutable state: the online solver with
//     its user history, a reusable core.Problem skeleton, and the
//     snapshot-construction scratch buffers. Sessions serialize their own
//     Process calls with an internal mutex; independent sessions run
//     concurrently.
//
// The pipeline stages, shared by the offline (Model.FitCorpus) and online
// (Session.Process) paths, are:
//
//	tokenize → vocabulary → graph build → lexicon prior → solve → label
//
// Stages 1–4 are Model methods (Tokenize, EnsureVocabulary, tgraph
// builders, Prior); stage 5 is core.FitOffline / core.Online.Step; stage 6
// is Label. The prior and the problem scaffolding are reused across a
// session's batches with zero steady-state heap allocation.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"triclust/internal/conform"
	"triclust/internal/core"
	"triclust/internal/lexicon"
	"triclust/internal/mat"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// Config assembles everything a Model needs. Zero-valued fields are
// replaced with the paper's defaults by NewModel.
type Config struct {
	// Online is the solver configuration; the offline path uses its
	// embedded Config, the online path all of it.
	Online core.OnlineConfig
	// Lexicon seeds the feature prior Sf0 (nil: the built-in polarity
	// lexicon).
	Lexicon *lexicon.Lexicon
	// LexiconHit is the prior mass a listed word puts on its class
	// (default 0.8).
	LexiconHit float64
	// Weighting selects TF / TF-IDF / binary features (default TF-IDF).
	Weighting text.Weighting
	// MinDF prunes vocabulary words occurring in fewer documents
	// (default 2).
	MinDF int
	// Tokenizer controls text normalization for tweets without Tokens.
	Tokenizer text.TokenizerOptions
	// Conform tunes the stream-conformance profile every session
	// accumulates (zero-valued fields select the defaults). The profile
	// always accumulates and scores; what a verdict does is the session's
	// runtime conformance mode (Session.SetConformMode).
	Conform conform.Params
}

func (c Config) withDefaults() Config {
	if c.Lexicon == nil {
		c.Lexicon = lexicon.Builtin()
	}
	if c.LexiconHit == 0 {
		c.LexiconHit = 0.8
	}
	if c.MinDF == 0 {
		c.MinDF = 2
	}
	if c.Online.K == 0 {
		if onlineUnset(c.Online) {
			// Nothing configured at all: the paper's full online setup.
			c.Online = core.DefaultOnlineConfig()
		} else {
			// K alone left to default: keep the caller's other fields
			// (zero α/β/γ are legitimate "regularizer off" settings; the
			// core solvers default MaxIter/Tol/τ/w themselves).
			c.Online.K = core.DefaultOnlineConfig().K
		}
	}
	return c
}

// Validate reports configuration the pipeline cannot run with, after
// filling defaults (so unset fields never fail). Beyond the solver checks
// of core.OnlineConfig.Validate it enforces the pipeline-level contracts:
// MinDF must not be negative, the class count must match what a polarity
// lexicon prior can seed (k ∈ {2, 3}: positive/negative plus optional
// neutral), and the lexicon hit mass must be a valid row maximum.
func (c Config) Validate() error {
	if c.MinDF < 0 {
		return fmt.Errorf("engine: MinDF must not be negative (got %d)", c.MinDF)
	}
	d := c.withDefaults()
	if err := d.Online.Validate(); err != nil {
		return err
	}
	if k := d.Online.K; k < 2 || k > 3 {
		return fmt.Errorf("engine: k = %d, but the lexicon prior defines the classes positive/negative(/neutral), so k must be 2 or 3", k)
	}
	if hit, k := d.LexiconHit, d.Online.K; hit < 1/float64(k) || hit > 1 {
		return fmt.Errorf("engine: LexiconHit must lie in [1/k, 1] = [%.3g, 1] (got %g)", 1/float64(k), hit)
	}
	switch d.Weighting {
	case text.TF, text.TFIDF, text.Binary:
	default:
		return fmt.Errorf("engine: unknown weighting scheme %d", d.Weighting)
	}
	return c.Conform.Validate()
}

// onlineUnset reports whether every distinguishing field of the online
// configuration is zero-valued, i.e. the caller configured nothing.
func onlineUnset(c core.OnlineConfig) bool {
	return c.K == 0 && c.Alpha == 0 && c.Beta == 0 && c.Gamma == 0 &&
		c.Tau == 0 && c.Window == 0 && c.MaxIter == 0 && c.Tol == 0 &&
		c.Seed == 0 && !c.LexiconInit
}

// Model is the frozen, shareable half of a topic: configuration,
// tokenizer, vocabulary and the cached lexicon prior. Construct with
// NewModel; derive per-stream state with NewSession.
type Model struct {
	cfg       core.OnlineConfig
	lex       *lexicon.Lexicon
	hit       float64
	weighting text.Weighting
	minDF     int
	tok       *text.Tokenizer
	conformP  conform.Params

	mu    sync.RWMutex
	vb    *text.VocabBuilder // pre-freeze document-frequency counts
	vocab *text.Vocabulary   // non-nil once frozen
	sf0   *mat.Dense         // built exactly once per vocabulary
}

// NewModel builds a Model from cfg, filling defaults.
func NewModel(cfg Config) *Model {
	cfg = cfg.withDefaults()
	return &Model{
		cfg:       cfg.Online,
		lex:       cfg.Lexicon,
		hit:       cfg.LexiconHit,
		weighting: cfg.Weighting,
		minDF:     cfg.MinDF,
		tok:       text.NewTokenizer(cfg.Tokenizer),
		conformP:  cfg.Conform,
		vb:        text.NewVocabBuilder(),
	}
}

// Config returns the solver configuration (the offline path uses the
// embedded Config).
func (m *Model) Config() core.OnlineConfig { return m.cfg }

// Tokenizer returns the model's tokenizer.
func (m *Model) Tokenizer() *text.Tokenizer { return m.tok }

// Weighting returns the feature weighting scheme.
func (m *Model) Weighting() text.Weighting { return m.weighting }

// Tokenize is stage 1: it fills Tokens for every tweet of c that has none.
func (m *Model) Tokenize(c *tgraph.Corpus) { c.Tokenize(m.tok) }

// Vocabulary returns the frozen vocabulary, or nil before the freeze.
func (m *Model) Vocabulary() *text.Vocabulary {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.vocab
}

// AccumulateVocabulary folds tokenized documents into the pre-freeze
// document-frequency counts, letting callers seed the vocabulary from
// warm-up data before the first processed batch fixes it. It errors once
// the vocabulary is frozen.
func (m *Model) AccumulateVocabulary(docs [][]string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vocab != nil {
		return errors.New("engine: vocabulary already frozen")
	}
	m.vb.Add(docs...)
	return nil
}

// EnsureVocabulary is stage 2: on the first call it folds docs into the
// accumulated document frequencies, freezes the vocabulary at MinDF and
// builds the cached Sf0 prior (stage 4's artifact); later calls return the
// frozen vocabulary unchanged. Safe for concurrent use.
func (m *Model) EnsureVocabulary(docs [][]string) *text.Vocabulary {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vocab == nil {
		m.vb.Add(docs...)
		m.freezeLocked(m.vb.Build(m.minDF))
	}
	return m.vocab
}

// FreezeNow fixes the vocabulary from the document frequencies
// accumulated so far (via AccumulateVocabulary), without waiting for a
// first processed batch. It errors if the vocabulary is already frozen or
// if the accumulated counts yield no words at MinDF.
func (m *Model) FreezeNow() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vocab != nil {
		return errors.New("engine: vocabulary already frozen")
	}
	v := m.vb.Build(m.minDF)
	if v.Len() == 0 {
		return fmt.Errorf("engine: warm-up documents yield an empty vocabulary at MinDF=%d", m.minDF)
	}
	m.freezeLocked(v)
	return nil
}

// FreezeVocabulary fixes an externally built vocabulary (e.g. shared
// across models). It errors if a different vocabulary is already frozen.
func (m *Model) FreezeVocabulary(v *text.Vocabulary) error {
	if v == nil {
		return errors.New("engine: nil vocabulary")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vocab != nil {
		if m.vocab == v {
			return nil
		}
		return errors.New("engine: vocabulary already frozen")
	}
	m.freezeLocked(v)
	return nil
}

func (m *Model) freezeLocked(v *text.Vocabulary) {
	m.vocab = v
	m.sf0 = m.lex.Sf0(v, m.cfg.K, m.hit)
}

// Prior is stage 4: the l×k lexicon prior Sf0 for the frozen vocabulary,
// built exactly once per vocabulary and returned without further
// allocation. It is nil before the vocabulary freeze. Callers must treat
// the returned matrix as read-only.
func (m *Model) Prior() *mat.Dense {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.sf0
}

// FitCorpus runs the full offline pipeline (Algorithm 1) over a corpus:
// tokenize → vocabulary (frozen from this corpus when not already set) →
// graph build → prior → solve → label.
func (m *Model) FitCorpus(c *tgraph.Corpus) (*Outcome, error) {
	if c == nil {
		return nil, errors.New("engine: nil corpus")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	m.Tokenize(c)
	vocab := m.EnsureVocabulary(c.TokenDocs())
	g := tgraph.Build(c, tgraph.BuildOptions{Weighting: m.weighting, Vocab: vocab})
	var p core.Problem
	p.Reset(g.Xp, g.Xu, g.Xr, g.Gu, m.Prior())
	res, err := core.FitOffline(&p, m.cfg.Config)
	if err != nil {
		return nil, err
	}
	return newOutcome(res, nil), nil
}

// Predict classifies tokenized documents against fitted factors by NMF
// fold-in without re-running the solver. Out-of-vocabulary words are
// ignored.
func (m *Model) Predict(f *core.Factors, docs [][]string) ([]Sentiment, error) {
	vocab := m.Vocabulary()
	if vocab == nil {
		return nil, errors.New("engine: vocabulary not frozen")
	}
	xp := text.DocFeatureMatrix(docs, vocab, m.weighting)
	sp, err := core.FoldInTweets(f, xp)
	if err != nil {
		return nil, err
	}
	return Label(sp), nil
}

// Outcome is the labeled output of one pipeline run (offline fit or one
// online step), with sentiments in the caller's input ordering.
type Outcome struct {
	// Res exposes the factor matrices and loss history. Its Sp rows
	// follow the caller's tweet ordering (Session.Process restores it
	// after canonicalization).
	Res *core.Result
	// TweetSentiments / UserSentiments / FeatureSentiments label the
	// factor rows.
	TweetSentiments   []Sentiment
	UserSentiments    []Sentiment
	FeatureSentiments []Sentiment
	// Active maps user-sentiment rows to global user indices (online
	// only; nil offline, where rows already follow the corpus).
	Active []int
	// Conform is the batch's conformance verdict, when the session's
	// profile had warmed up enough to score it (nil during warm-up and
	// on the offline path). The batch was applied regardless: an
	// enforce-mode rejection returns a *conform.BatchError instead.
	Conform *conform.Verdict
	// Skipped marks a no-op step (empty batch): no solver ran, no state
	// advanced, every slice above is empty.
	Skipped bool
}

func newOutcome(res *core.Result, active []int) *Outcome {
	return &Outcome{
		Res:               res,
		TweetSentiments:   Label(res.Sp),
		UserSentiments:    Label(res.Su),
		FeatureSentiments: Label(res.Sf),
		Active:            active,
	}
}

// skippedOutcome is the well-defined result of an empty batch.
func skippedOutcome() *Outcome {
	return &Outcome{
		TweetSentiments:   []Sentiment{},
		UserSentiments:    []Sentiment{},
		FeatureSentiments: []Sentiment{},
		Active:            []int{},
		Skipped:           true,
	}
}
