package engine

import (
	"triclust/internal/conform"
	"triclust/internal/mat"
)

// ViewState is the convergence indicator of a published View: how much
// the served estimates should be trusted while batches are still
// streaming in (warm-up, backfill, journal or replica replay).
type ViewState string

const (
	// ViewWarming: the topic has not yet seen enough batches for the
	// temporal window to fill (or the vocabulary is not frozen); estimates
	// are first impressions.
	ViewWarming ViewState = "warming"
	// ViewConverging: estimates are still moving between batches by more
	// than SteadyDelta; an answer is served, with its delta, instead of
	// making the client wait for the stream to settle.
	ViewConverging ViewState = "converging"
	// ViewSteady: the last batch moved the published estimates by at most
	// SteadyDelta per matrix entry on average.
	ViewSteady ViewState = "steady"
)

// SteadyDelta is the mean per-entry estimate movement (between the two
// most recent views, over users known to both) at or below which a view
// reports ViewSteady.
const SteadyDelta = 0.005

// View is an immutable snapshot of everything a topic's read plane
// serves: per-user sentiment estimates, feature sentiments, counters,
// the stream fingerprint, the ownership epoch and a convergence
// indicator. A Session materializes one after every committed batch; the
// Topic publishes it with a single atomic pointer swap, so readers load
// a fully consistent view without taking any lock (RCU: readers never
// block writers, writers never wait for readers).
//
// A View and everything it references is frozen at publication. Readers
// must treat every field — slices included — as read-only.
type View struct {
	// Batches / Skips are the session's step counters at publication.
	Batches, Skips int
	// RandDraws is the solver's position in its replayable random stream;
	// (Batches, RandDraws) is the stream fingerprint. Two topics that
	// processed the same batches publish views with identical
	// fingerprints and identical estimates.
	RandDraws uint64
	// Epoch is the topic's ownership epoch (sharded deployments).
	Epoch uint64
	// LastTime / HasTime report the most recent non-empty batch time.
	LastTime int
	HasTime  bool
	// Frozen / VocabSize describe the vocabulary at publication.
	Frozen    bool
	VocabSize int
	// NumUsers is the fixed user-universe size; Est and Known have this
	// length. Known[u] reports whether user u has recorded history;
	// KnownUsers counts the true entries. Est[u] is the labeled estimate
	// (meaningful only where Known[u]).
	NumUsers   int
	KnownUsers int
	Est        []Sentiment
	Known      []bool
	// Rows is the flat NumUsers×K matrix of raw estimate rows backing
	// Est, kept so the next view can compute its Delta against this one.
	Rows []float64
	K    int
	// Features labels the per-word rows of the most recent solve (nil
	// before the first one), in vocabulary feature-index order.
	Features []Sentiment
	// State / Delta are the convergence indicator: Delta is the mean
	// absolute per-entry change of the user estimates versus the previous
	// view (1 when there is no previous view to compare against), State
	// classifies it (see ViewState).
	State ViewState
	Delta float64
	// Conform summarizes the stream-conformance profile at publication
	// (learned invariants, verdict counters, drift trend).
	Conform *conform.Report
}

// UserEstimate returns the view's estimate for a user, or ok = false if
// the user had no recorded history when the view was published.
func (v *View) UserEstimate(user int) (Sentiment, bool) {
	if user < 0 || user >= v.NumUsers || !v.Known[user] {
		return Sentiment{}, false
	}
	return v.Est[user], true
}

// WithSkip returns a copy of v with one more skipped batch. A skipped
// (empty) batch changes no solver state, so estimates, fingerprint and
// convergence are carried over unchanged.
func (v *View) WithSkip() *View {
	c := *v
	c.Skips++
	return &c
}

// WithEpoch returns a copy of v owned at epoch e (hand-off and promotion
// republish the read plane through this without re-materializing it).
func (v *View) WithEpoch(e uint64) *View {
	c := *v
	c.Epoch = e
	return &c
}

// BuildView materializes the session's current results as an immutable
// View: the per-user estimates labeled exactly as UserEstimate labels
// them, the feature sentiments of sf (the most recent solve's Sf; nil
// before the first solve), counters and the stream fingerprint. prev is
// the previously published view (nil for the first), used to compute the
// convergence delta; epoch is stamped in verbatim.
//
// The cost is O(knownUsers·k + vocab) per call — paid once per committed
// batch on the write path, so the read path pays nothing.
func (s *Session) BuildView(sf *mat.Dense, prev *View, epoch uint64) *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.online.Config().K
	n := len(s.users)
	v := &View{
		Batches:   s.batches,
		Skips:     s.skips,
		RandDraws: s.online.RandDraws(),
		Epoch:     epoch,
		NumUsers:  n,
		K:         k,
		Est:       make([]Sentiment, n),
		Known:     make([]bool, n),
		Rows:      make([]float64, n*k),
	}
	if t, ok := s.online.LastTime(); ok {
		v.LastTime, v.HasTime = t, true
	}
	if vb := s.model.Vocabulary(); vb != nil {
		v.Frozen, v.VocabSize = true, vb.Len()
	}
	s.online.VisitUserEstimates(func(u int, row []float64) {
		if u < 0 || u >= n || len(row) != k {
			return
		}
		v.Known[u] = true
		v.KnownUsers++
		copy(v.Rows[u*k:(u+1)*k], row)
		v.Est[u] = LabelRow(row)
	})
	if sf != nil {
		v.Features = Label(sf)
	}
	v.Conform = s.prof.Report()
	v.Delta = viewDelta(v, prev)
	v.State = viewState(v, s.online.Config().Window)
	return v
}

// viewDelta is the mean absolute per-entry change of the user estimate
// rows between v and prev, over users known to both. It is 1 (maximal)
// when there is nothing to compare against — no previous view, a
// different universe or class count, or no overlapping users.
func viewDelta(v, prev *View) float64 {
	if prev == nil || prev.K != v.K || prev.NumUsers != v.NumUsers {
		return 1
	}
	sum, cnt := 0.0, 0
	for u := 0; u < v.NumUsers; u++ {
		if !v.Known[u] || !prev.Known[u] {
			continue
		}
		for j := u * v.K; j < (u+1)*v.K; j++ {
			d := v.Rows[j] - prev.Rows[j]
			if d < 0 {
				d = -d
			}
			sum += d
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

// viewState classifies a view's convergence: warming until the
// vocabulary froze and the temporal window filled, then steady once the
// last batch moved the estimates by at most SteadyDelta, converging in
// between.
func viewState(v *View, window int) ViewState {
	if window < 1 {
		window = 1
	}
	if !v.Frozen || v.Batches < window {
		return ViewWarming
	}
	if v.Delta <= SteadyDelta {
		return ViewSteady
	}
	return ViewConverging
}
