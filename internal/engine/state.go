package engine

import (
	"fmt"

	"triclust/internal/conform"
	"triclust/internal/core"
	"triclust/internal/lexicon"
	"triclust/internal/mat"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// State is the complete serializable state of one topic: the Model's
// frozen artifacts (configuration, lexicon, vocabulary, cached Sf0 prior),
// the Session's counters and user universe, and the Online solver's
// history and random-stream position. A Session restored from an exported
// State continues the stream bit-identically (at a fixed kernel
// parallelism width): every input to every future pipeline stage —
// vocabulary, prior, solver history, RNG draws — is reproduced exactly.
//
// internal/codec serializes a State to the versioned binary snapshot
// format; this type is the codec's in-memory schema.
type State struct {
	// Config is the fully defaulted solver configuration.
	Config core.OnlineConfig
	// Weighting / MinDF / LexiconHit / Tokenizer mirror engine.Config.
	Weighting  text.Weighting
	MinDF      int
	LexiconHit float64
	Tokenizer  text.TokenizerOptions
	// Lexicon is the word→class map seeding Sf0 (needed again only if the
	// vocabulary is not yet frozen).
	Lexicon map[string]int

	// Frozen reports whether the vocabulary is fixed. When true,
	// VocabWords and Sf0 carry the frozen artifacts; when false,
	// VocabCounts/VocabDocs carry the pre-freeze document frequencies
	// (warm-up state).
	Frozen      bool
	VocabWords  []string
	Sf0         *mat.Dense
	VocabCounts map[string]int
	VocabDocs   int

	// Users is the session's fixed user universe.
	Users []tgraph.User
	// Batches / Skips are the session's step counters.
	Batches, Skips int

	// Online is the solver's mutable state.
	Online *core.OnlineState

	// LastFactors optionally carries the factor matrices of the most
	// recent solve, so fold-in prediction works immediately after a
	// restore. Nil when the topic never solved (or the exporter chose not
	// to include them); Restore tolerates nil.
	LastFactors *core.Factors

	// Epoch is the topic's ownership epoch in a sharded deployment: 0 for
	// a topic that never changed shards, incremented by one on every
	// hand-off. It rides inside the snapshot so the receiving shard can
	// fence out stale (pre-move) snapshots; it does not influence the
	// solver or the session.
	Epoch uint64

	// Conform is the stream-conformance profile. Nil in states exported
	// by pre-conformance builds (and tolerated by Restore, which starts a
	// fresh default profile); the codec omits the section when the
	// profile carries no information, so such snapshots stay
	// byte-identical across the upgrade.
	Conform *conform.Profile
}

// ExportState deep-copies the session's full state (model + session +
// solver). Safe to call concurrently with Process: it takes both the
// session and model locks.
func (s *Session) ExportState() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &State{
		Config:    s.online.Config(),
		Users:     append([]tgraph.User(nil), s.users...),
		Batches:   s.batches,
		Skips:     s.skips,
		Online:    s.online.ExportState(),
		MinDF:     s.model.minDF,
		Weighting: s.model.weighting,
		Tokenizer: s.model.tok.Options(),
	}
	st.LexiconHit = s.model.hit
	st.Lexicon = s.model.lex.Entries()
	st.Conform = s.prof.Clone()

	s.model.mu.RLock()
	defer s.model.mu.RUnlock()
	if s.model.vocab != nil {
		st.Frozen = true
		st.VocabWords = s.model.vocab.Words()
		st.Sf0 = s.model.sf0.Clone()
	} else {
		st.VocabCounts = s.model.vb.Counts()
		st.VocabDocs = s.model.vb.Docs()
	}
	return st
}

// RestoreSession rebuilds a Model and Session from an exported State. The
// state is deep-copied; mutating it afterwards does not affect the
// session. The restored session continues exactly where the exported one
// stopped.
func RestoreSession(st *State) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("engine: nil state")
	}
	if st.Config.K < 1 {
		return nil, fmt.Errorf("engine: state has k = %d", st.Config.K)
	}
	// The codec decodes counters as uint64 and casts to int, so a crafted
	// snapshot can smuggle in negative values the session arithmetic never
	// produces.
	if st.Batches < 0 || st.Skips < 0 || st.VocabDocs < 0 {
		return nil, fmt.Errorf("engine: negative counters in state (batches=%d, skips=%d, docs=%d)",
			st.Batches, st.Skips, st.VocabDocs)
	}
	lex, err := lexicon.FromEntries(st.Lexicon)
	if err != nil {
		return nil, fmt.Errorf("engine: restore lexicon: %w", err)
	}
	// A snapshot is framed and checksummed but not signed: hold its
	// configuration to the same contract NewTopic enforces, so a crafted
	// or hand-edited snapshot cannot smuggle in parameters the public
	// API rejects (negative decay, k the prior cannot seed, …).
	cfg := Config{
		Online:     st.Config,
		Lexicon:    lex,
		LexiconHit: st.LexiconHit,
		Weighting:  st.Weighting,
		MinDF:      st.MinDF,
		Tokenizer:  st.Tokenizer,
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("engine: snapshot configuration: %w", err)
	}
	m := &Model{
		cfg:       st.Config,
		lex:       lex,
		hit:       st.LexiconHit,
		weighting: st.Weighting,
		minDF:     st.MinDF,
		tok:       text.NewTokenizer(st.Tokenizer),
		vb:        text.NewVocabBuilderFromCounts(st.VocabCounts, st.VocabDocs),
	}
	if st.Frozen {
		if st.Sf0 == nil {
			return nil, fmt.Errorf("engine: frozen state carries no Sf0 prior")
		}
		if !st.Sf0.Dims(len(st.VocabWords), st.Config.K) {
			return nil, fmt.Errorf("engine: Sf0 is %dx%d for %d words, k=%d",
				st.Sf0.Rows(), st.Sf0.Cols(), len(st.VocabWords), st.Config.K)
		}
		m.vocab = text.NewVocabularyFromWords(st.VocabWords)
		if m.vocab.Len() != len(st.VocabWords) {
			return nil, fmt.Errorf("engine: vocabulary words not distinct")
		}
		// The snapshot's Sf0 is authoritative (not recomputed from the
		// lexicon) so a restored topic is bit-identical even if prior
		// construction ever changes.
		m.sf0 = st.Sf0.Clone()
	}
	if err := validateStateShapes(st); err != nil {
		return nil, err
	}
	online, err := core.NewOnlineFromState(st.Config, st.Online)
	if err != nil {
		return nil, err
	}
	// A pre-conformance state carries no profile: start a fresh default
	// one (it begins learning from the next batch). A present profile is
	// re-validated — the codec's CRC does not vouch for semantics.
	prof := st.Conform
	if prof == nil {
		prof = conform.NewProfile(conform.Params{})
	} else {
		if err := prof.Validate(); err != nil {
			return nil, err
		}
		prof = prof.Clone()
	}
	return &Session{
		model:   m,
		users:   append([]tgraph.User(nil), st.Users...),
		online:  online,
		in:      text.NewInterner(),
		prof:    prof,
		batches: st.Batches,
		skips:   st.Skips,
	}, nil
}

// validateStateShapes cross-checks the state's components against each
// other: solver history and last factors must agree with the vocabulary
// and class count, and a never-frozen topic cannot carry solver results.
// core.NewOnlineFromState separately checks the solver state's internal
// shapes; together they ensure a valid-checksum but crafted snapshot is
// rejected at restore instead of panicking inside a later Process or
// Predict.
func validateStateShapes(st *State) error {
	k := st.Config.K
	if !st.Frozen {
		if st.Batches > 0 {
			return fmt.Errorf("engine: state has %d batches but no frozen vocabulary", st.Batches)
		}
		if st.Online != nil && (len(st.Online.SfHist) > 0 || st.Online.LastHp != nil || st.Online.LastHu != nil) {
			return fmt.Errorf("engine: state has solver history but no frozen vocabulary")
		}
		if st.LastFactors != nil {
			return fmt.Errorf("engine: state has fitted factors but no frozen vocabulary")
		}
		return nil
	}
	words := len(st.VocabWords)
	if st.Online != nil {
		for i, s := range st.Online.SfHist {
			if s.Sf != nil && s.Sf.Rows() != words {
				return fmt.Errorf("engine: feature snapshot %d has %d rows for %d vocabulary words",
					i, s.Sf.Rows(), words)
			}
		}
	}
	if f := st.LastFactors; f != nil {
		if f.Sf == nil || f.Hp == nil || f.Hu == nil {
			return fmt.Errorf("engine: last factors missing Sf/Hp/Hu")
		}
		if !f.Sf.Dims(words, k) {
			return fmt.Errorf("engine: last Sf is %dx%d for %d words, k=%d",
				f.Sf.Rows(), f.Sf.Cols(), words, k)
		}
		if !f.Hp.Dims(k, k) || !f.Hu.Dims(k, k) {
			return fmt.Errorf("engine: last association cores are %dx%d / %dx%d, want %dx%d",
				f.Hp.Rows(), f.Hp.Cols(), f.Hu.Rows(), f.Hu.Cols(), k, k)
		}
		if f.Sp != nil && f.Sp.Cols() != k {
			return fmt.Errorf("engine: last Sp has %d columns, want k=%d", f.Sp.Cols(), k)
		}
		if f.Su != nil && f.Su.Cols() != k {
			return fmt.Errorf("engine: last Su has %d columns, want k=%d", f.Su.Cols(), k)
		}
	}
	return nil
}
