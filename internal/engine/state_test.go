package engine

import (
	"testing"

	"triclust/internal/core"
	"triclust/internal/mat"
)

// steppedSession runs two day-batches through a fresh session so its
// exported state carries a frozen vocabulary, counters and solver history.
func steppedSession(t *testing.T) *Session {
	t.Helper()
	d := testDataset(t, 2)
	m := NewModel(fastConfig())
	sess := m.NewSession(d.Corpus.Users)
	for day := 0; day < 2; day++ {
		if _, err := sess.Process(day, dayBatch(d, day)); err != nil {
			t.Fatalf("Process day %d: %v", day, err)
		}
	}
	if sess.Batches() != 2 {
		t.Fatalf("fixture processed %d non-empty batches, want 2", sess.Batches())
	}
	return sess
}

// validFactors builds last-solve factors with the shapes the state's
// vocabulary and class count demand.
func validFactors(st *State) *core.Factors {
	k := st.Config.K
	words := len(st.VocabWords)
	return &core.Factors{
		Sp: mat.NewDense(4, k),
		Su: mat.NewDense(4, k),
		Sf: mat.NewDense(words, k),
		Hp: mat.NewDense(k, k),
		Hu: mat.NewDense(k, k),
	}
}

func TestRestoreSessionRejectsIncoherentState(t *testing.T) {
	sess := steppedSession(t)
	base := sess.ExportState()
	base.LastFactors = validFactors(base)
	if _, err := RestoreSession(base); err != nil {
		t.Fatalf("coherent state must restore: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(st *State)
	}{
		// The codec decodes counters as uint64; a crafted snapshot can make
		// the int casts negative.
		{"negative batches", func(st *State) { st.Batches = -1 }},
		{"negative skips", func(st *State) { st.Skips = -1 }},
		{"negative vocab docs", func(st *State) { st.VocabDocs = -1 }},
		{"batches without frozen vocabulary", func(st *State) {
			st.Frozen = false
			st.VocabWords = nil
			st.Sf0 = nil
			st.LastFactors = nil
		}},
		{"history rows vs vocabulary", func(st *State) {
			st.Online.SfHist[0].Sf = mat.NewDense(1, st.Config.K)
			st.Online.SfHist[0].Seen = make([]bool, 1)
		}},
		{"factors missing core", func(st *State) { st.LastFactors.Hp = nil }},
		{"factors Sf shape", func(st *State) {
			st.LastFactors.Sf = mat.NewDense(len(st.VocabWords)+1, st.Config.K)
		}},
		{"factors core shape", func(st *State) {
			st.LastFactors.Hp = mat.NewDense(st.Config.K, st.Config.K+1)
		}},
		{"factors Sp columns", func(st *State) {
			st.LastFactors.Sp = mat.NewDense(4, st.Config.K+1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := sess.ExportState()
			st.LastFactors = validFactors(st)
			tc.mutate(st)
			if _, err := RestoreSession(st); err == nil {
				t.Fatal("incoherent state restored without error")
			}
		})
	}
}
