package baseline

import (
	"triclust/internal/core"
	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// ESSAOptions configure the ESSA baseline.
type ESSAOptions struct {
	// Alpha weighs the emotional-signal regularizer ‖Sf − Sf0‖².
	Alpha float64
	// MaxIter / Tol / Seed mirror core.Config.
	MaxIter int
	Tol     float64
	Seed    int64
}

// DefaultESSAOptions matches the tri-clustering defaults for a fair
// comparison.
func DefaultESSAOptions() ESSAOptions {
	return ESSAOptions{Alpha: 0.1, MaxIter: 100, Tol: 1e-4, Seed: 1}
}

// ESSA reproduces Hu et al. [15]: unsupervised sentiment analysis by
// orthogonal non-negative matrix tri-factorization of the tweet–feature
// matrix with an emotional-signal (lexicon) regularizer — i.e. the
// tweet–feature component of the tri-clustering objective with *no user
// coupling* (no Xu, Xr, or Gu). The accuracy gap between ESSA and
// tri-clustering in Table 4 measures exactly that missing coupling.
//
// It returns the per-tweet cluster assignment and the final factor
// matrices (Sp n×k, Sf l×k).
func ESSA(xp *sparse.CSR, sf0 *mat.Dense, k int, opts ESSAOptions) ([]int, *core.Result, error) {
	// Reuse the tri-clustering solver with an empty user layer: m = 0
	// collapses ‖Xu − SuHuSfᵀ‖ and ‖Xr − SuSpᵀ‖ to zero, leaving
	// ‖Xp − SpHpSfᵀ‖² + α‖Sf − Sf0‖².
	p := &core.Problem{
		Xp:  xp,
		Xu:  sparse.Zeros(0, xp.Cols()),
		Xr:  sparse.Zeros(0, xp.Rows()),
		Sf0: sf0,
	}
	cfg := core.Config{
		K:           k,
		Alpha:       opts.Alpha,
		Beta:        0,
		MaxIter:     opts.MaxIter,
		Tol:         opts.Tol,
		Seed:        opts.Seed,
		LexiconInit: sf0 != nil,
	}
	res, err := core.FitOffline(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.TweetClusters(), res, nil
}
