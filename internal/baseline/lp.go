package baseline

import (
	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// LPOptions configure label propagation.
type LPOptions struct {
	// Iterations bounds the propagation sweeps.
	Iterations int
	// Clamp keeps labeled nodes at their seed distribution after each
	// sweep (standard Zhu-style LP).
	Clamp bool
}

// DefaultLPOptions returns 30 clamped sweeps.
func DefaultLPOptions() LPOptions { return LPOptions{Iterations: 30, Clamp: true} }

// LabelPropagationGraph runs semi-supervised label propagation on an
// arbitrary (weighted) graph g: Y ← D⁻¹ G Y, re-clamping seeds. Nodes with
// label ≥ 0 are seeds; the result is the argmax class per node, with −1
// for nodes no label mass ever reaches. This is the user-level LP of Tan
// et al. [30] applied to the user–user retweet graph (§5).
func LabelPropagationGraph(g *sparse.CSR, labels []int, k int, opts LPOptions) []int {
	n := g.Rows()
	if len(labels) != n {
		panic("baseline: labels length mismatch")
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 30
	}
	// Double-buffered sweeps: y and ny are allocated once and swapped, so
	// the propagation loop is allocation-free and rides the parallel SpMM.
	y := mat.NewDense(n, k)
	ny := mat.NewDense(n, k)
	for i, c := range labels {
		if c >= 0 && c < k {
			y.Set(i, c, 1)
		}
	}
	deg := g.RowSums()
	for it := 0; it < opts.Iterations; it++ {
		g.MulDenseInto(ny, y)
		for i := 0; i < n; i++ {
			row := ny.Row(i)
			if deg[i] > 0 {
				inv := 1 / deg[i]
				for j := range row {
					row[j] *= inv
				}
			}
		}
		if opts.Clamp {
			for i, c := range labels {
				if c >= 0 && c < k {
					row := ny.Row(i)
					for j := range row {
						row[j] = 0
					}
					row[c] = 1
				}
			}
		}
		y, ny = ny, y
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := y.Row(i)
		best, bestV := -1, 0.0
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		out[i] = best
	}
	return out
}

// LabelPropagationBipartite propagates tweet labels through shared
// features (the "lexical links" of Speriosu et al. [29]): each sweep is
// Y_f ← norm(Xᵀ Y_p); Y_p ← norm(X Y_f), with labeled tweets clamped.
// x is the n×l tweet–feature matrix. Returns per-tweet classes (−1 when
// unreachable).
func LabelPropagationBipartite(x *sparse.CSR, labels []int, k int, opts LPOptions) []int {
	n := x.Rows()
	if len(labels) != n {
		panic("baseline: labels length mismatch")
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 30
	}
	yp := mat.NewDense(n, k)
	for i, c := range labels {
		if c >= 0 && c < k {
			yp.Set(i, c, 1)
		}
	}
	rowDeg := x.RowSums()
	colDeg := x.ColSums()
	// The xᵀ·yp half-sweep scatters in CSR form; against the transpose,
	// materialized once for all iterations, it is a parallel gather. The
	// yf/np buffers are reused across sweeps.
	xT := x.T() // l×n
	yf := mat.NewDense(x.Cols(), k)
	np := mat.NewDense(n, k)
	for it := 0; it < opts.Iterations; it++ {
		xT.MulDenseInto(yf, yp) // l×k
		for j := 0; j < yf.Rows(); j++ {
			if colDeg[j] > 0 {
				row := yf.Row(j)
				inv := 1 / colDeg[j]
				for q := range row {
					row[q] *= inv
				}
			}
		}
		ny := x.MulDenseInto(np, yf) // n×k
		for i := 0; i < n; i++ {
			if rowDeg[i] > 0 {
				row := ny.Row(i)
				inv := 1 / rowDeg[i]
				for q := range row {
					row[q] *= inv
				}
			}
		}
		if opts.Clamp {
			for i, c := range labels {
				if c >= 0 && c < k {
					row := ny.Row(i)
					for q := range row {
						row[q] = 0
					}
					row[c] = 1
				}
			}
		}
		yp, np = ny, yp
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := yp.Row(i)
		best, bestV := -1, 0.0
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		out[i] = best
	}
	return out
}

// RevealLabels returns a copy of truth with only every nodes whose index
// hashes below frac revealed — a deterministic "x% labels" split used for
// LP-5 / LP-10 / UserReg-10. Items with truth < 0 stay hidden.
func RevealLabels(truth []int, frac float64, seed int64) []int {
	out := make([]int, len(truth))
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i, c := range truth {
		out[i] = -1
		if c < 0 {
			continue
		}
		// SplitMix64-style hash for a deterministic pseudo-random subset.
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if float64(z%1000000)/1000000 < frac {
			out[i] = c
		}
	}
	return out
}
