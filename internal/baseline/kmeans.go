package baseline

import (
	"math"
	"math/rand"

	"triclust/internal/par"
	"triclust/internal/sparse"
)

// KMeansOptions configure spherical k-means.
type KMeansOptions struct {
	// MaxIter bounds the Lloyd iterations.
	MaxIter int
	// Restarts picks the best of several random initializations.
	Restarts int
	// Seed drives initialization.
	Seed int64
}

// DefaultKMeansOptions returns 50 iterations × 4 restarts.
func DefaultKMeansOptions() KMeansOptions {
	return KMeansOptions{MaxIter: 50, Restarts: 4, Seed: 1}
}

// KMeans clusters the rows of a sparse matrix with spherical k-means
// (cosine similarity), the classical document-clustering baseline the
// NMF literature compares against (ONMTF [9] is evaluated against it in
// the ESSA paper). Empty rows are assigned cluster 0. Returns per-row
// cluster ids in [0, k).
func KMeans(x *sparse.CSR, k int, opts KMeansOptions) []int {
	n, l := x.Rows(), x.Cols()
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 1
	}
	if n == 0 || k <= 0 {
		return make([]int, n)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Pre-normalized rows (L2) for cosine similarity.
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		_, vals := x.Row(i)
		var s float64
		for _, v := range vals {
			s += v * v
		}
		norms[i] = math.Sqrt(s)
	}

	bestAssign := make([]int, n)
	bestScore := math.Inf(-1)
	// All loop state is hoisted out of the restart/iteration loops so the
	// Lloyd iterations allocate nothing.
	centroids := make([][]float64, k)
	backing := make([]float64, k*l)
	for c := 0; c < k; c++ {
		centroids[c] = backing[c*l : (c+1)*l]
	}
	assign := make([]int, n)
	counts := make([]int, k)
	// Per-chunk partial reductions of the parallel assignment step,
	// combined in chunk order for determinism at a fixed par.Procs().
	partScore := make([]float64, par.MaxChunks())
	partChanged := make([]bool, par.MaxChunks())
	avgNNZ := x.NNZ()/max(n, 1) + 1

	for restart := 0; restart < opts.Restarts; restart++ {
		// Initialize centroids from random distinct rows.
		for c := 0; c < k; c++ {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
			i := rng.Intn(n)
			cols, vals := x.Row(i)
			if norms[i] > 0 {
				for p, j := range cols {
					centroids[c][j] = vals[p] / norms[i]
				}
			} else {
				centroids[c][rng.Intn(l)] = 1
			}
		}
		var score float64
		for it := 0; it < opts.MaxIter; it++ {
			// Assignment step: rows are independent, so the row range is
			// split across workers; score and the changed flag reduce over
			// per-chunk partials.
			used := par.ForChunked(n, k*avgNNZ, func(chunk, lo, hi int) {
				var sum float64
				var moved bool
				for i := lo; i < hi; i++ {
					cols, vals := x.Row(i)
					best, bestSim := 0, math.Inf(-1)
					for c := 0; c < k; c++ {
						cent := centroids[c]
						var dot float64
						for p, j := range cols {
							dot += vals[p] * cent[j]
						}
						if norms[i] > 0 {
							dot /= norms[i]
						}
						if dot > bestSim {
							best, bestSim = c, dot
						}
					}
					if assign[i] != best {
						assign[i] = best
						moved = true
					}
					sum += bestSim
				}
				partScore[chunk] = sum
				partChanged[chunk] = moved
			})
			score = 0
			changed := false
			for chunk := 0; chunk < used; chunk++ {
				score += partScore[chunk]
				changed = changed || partChanged[chunk]
			}
			if !changed && it > 0 {
				break
			}
			// Update step: mean of normalized member rows, re-normalized.
			for c := 0; c < k; c++ {
				for j := range centroids[c] {
					centroids[c][j] = 0
				}
			}
			for c := range counts {
				counts[c] = 0
			}
			for i := 0; i < n; i++ {
				c := assign[i]
				counts[c]++
				if norms[i] == 0 {
					continue
				}
				cols, vals := x.Row(i)
				for p, j := range cols {
					centroids[c][j] += vals[p] / norms[i]
				}
			}
			for c := 0; c < k; c++ {
				if counts[c] == 0 {
					// Re-seed an empty cluster.
					i := rng.Intn(n)
					cols, vals := x.Row(i)
					for j := range centroids[c] {
						centroids[c][j] = 0
					}
					if norms[i] > 0 {
						for p, j := range cols {
							centroids[c][j] = vals[p] / norms[i]
						}
					}
					continue
				}
				var s float64
				for _, v := range centroids[c] {
					s += v * v
				}
				if s > 0 {
					inv := 1 / math.Sqrt(s)
					for j := range centroids[c] {
						centroids[c][j] *= inv
					}
				}
			}
		}
		if score > bestScore {
			bestScore = score
			copy(bestAssign, assign)
		}
	}
	return bestAssign
}
