// Package baseline implements the comparison methods of the paper's
// experimental section (Tables 4 and 5): multinomial Naive Bayes [11],
// linear SVM [28] (via Pegasos), graph label propagation [12, 29, 30],
// UserReg-style semi-supervised user regularization [7], the unsupervised
// ESSA [15] (emotional-signal NMTF without user coupling), and BACG-style
// attributed-graph user clustering [34], plus the mini-batch / full-batch
// drivers used as the online extremes in Figures 11–12.
package baseline

import (
	"math"

	"triclust/internal/sparse"
)

// NaiveBayes is a multinomial Naive Bayes classifier over sparse count
// features (Go et al. [11] style, minus the distant-supervision step —
// labels come from the training subset instead of emoticons).
type NaiveBayes struct {
	k        int
	logPrior []float64
	logCond  [][]float64 // [class][feature]
}

// TrainNaiveBayes fits the classifier on the rows of x whose label ≥ 0,
// with Laplace smoothing. k is the number of classes.
func TrainNaiveBayes(x *sparse.CSR, labels []int, k int) *NaiveBayes {
	if len(labels) != x.Rows() {
		panic("baseline: labels length mismatch")
	}
	l := x.Cols()
	counts := make([][]float64, k)
	totals := make([]float64, k)
	docs := make([]float64, k)
	for c := range counts {
		counts[c] = make([]float64, l)
	}
	var labeled float64
	for i := 0; i < x.Rows(); i++ {
		c := labels[i]
		if c < 0 || c >= k {
			continue
		}
		labeled++
		docs[c]++
		cols, vals := x.Row(i)
		for p, j := range cols {
			counts[c][j] += vals[p]
			totals[c] += vals[p]
		}
	}
	nb := &NaiveBayes{k: k, logPrior: make([]float64, k), logCond: make([][]float64, k)}
	for c := 0; c < k; c++ {
		nb.logPrior[c] = math.Log((docs[c] + 1) / (labeled + float64(k)))
		nb.logCond[c] = make([]float64, l)
		denom := totals[c] + float64(l)
		for j := 0; j < l; j++ {
			nb.logCond[c][j] = math.Log((counts[c][j] + 1) / denom)
		}
	}
	return nb
}

// PredictRow returns the most likely class of one sparse row.
func (nb *NaiveBayes) PredictRow(cols []int, vals []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < nb.k; c++ {
		s := nb.logPrior[c]
		for p, j := range cols {
			s += vals[p] * nb.logCond[c][j]
		}
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Predict classifies every row of x.
func (nb *NaiveBayes) Predict(x *sparse.CSR) []int {
	out := make([]int, x.Rows())
	for i := range out {
		cols, vals := x.Row(i)
		out[i] = nb.PredictRow(cols, vals)
	}
	return out
}
