package baseline

import (
	"triclust/internal/mat"
	"triclust/internal/par"
	"triclust/internal/sparse"
)

// UserRegOptions configure the UserReg-style semi-supervised method.
type UserRegOptions struct {
	// Mu balances content evidence against the user-consistency prior
	// (higher = trust the user aggregate more).
	Mu float64
	// Iterations is the number of alternating refinement sweeps.
	Iterations int
	// SVM trains the base tweet classifier.
	SVM SVMOptions
}

// DefaultUserRegOptions returns μ=0.5, 10 sweeps.
func DefaultUserRegOptions() UserRegOptions {
	return UserRegOptions{Mu: 0.5, Iterations: 10, SVM: DefaultSVMOptions()}
}

// UserRegResult carries both prediction levels.
type UserRegResult struct {
	TweetClasses []int
	UserClasses  []int
}

// UserReg reproduces the behaviour of Deng et al. [7]: a base classifier
// trained on the revealed tweet labels produces per-tweet scores, which
// are then regularized so that tweets of the same user agree ("two posts
// created by the same user have similar sentiments"); user-level sentiment
// is the aggregation of the user's tweet sentiments (the assumption the
// paper argues is biased — Table 5 discussion).
//
// The refinement sweeps run on the parallel row-chunk kernel: the user
// aggregation is a gather over a prebuilt user→tweets index (each user row
// is owned by exactly one chunk, so no scatter races and the result is
// independent of the chunking), and the tweet update parallelizes over
// tweet rows.
//
// xp is the n×l tweet–feature matrix; revealed holds the training labels
// (−1 hidden); owner[i] is the user of tweet i; numUsers is m.
func UserReg(xp *sparse.CSR, revealed, owner []int, numUsers, k int, opts UserRegOptions) *UserRegResult {
	n := xp.Rows()
	if len(revealed) != n || len(owner) != n {
		panic("baseline: UserReg input length mismatch")
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 10
	}

	// Base content scores from a supervised classifier on the revealed
	// subset, squashed to per-class probabilities.
	svm := TrainSVM(xp, revealed, k, opts.SVM)
	scores := mat.NewDense(n, k)
	scoreCost := k * (4 + xp.NNZ()/maxInt(1, n))
	par.For(n, scoreCost, func(lo, hi int) {
		s := make([]float64, k)
		for i := lo; i < hi; i++ {
			cols, vals := xp.Row(i)
			svm.ScoreInto(s, cols, vals)
			row := scores.Row(i)
			// Softmax-free squash: shift to non-negative and normalize.
			minV := s[0]
			for _, v := range s[1:] {
				if v < minV {
					minV = v
				}
			}
			var sum float64
			for c, v := range s {
				row[c] = v - minV + 1e-9
				sum += row[c]
			}
			for c := range row {
				row[c] /= sum
			}
		}
	})

	// Prebuilt user→tweets index (CSR-style) so the aggregation sweep is
	// a race-free parallel gather over users.
	tweetsOf, starts := invertOwners(owner, numUsers, n)

	// Alternate: user distribution = mean of tweet distributions;
	// tweet distribution = (1−μ)·content + μ·user prior; seeds clamped.
	tweet := scores.Clone()
	user := mat.NewDense(numUsers, k)
	avgTweetsPerUser := n / maxInt(1, numUsers)
	for it := 0; it < opts.Iterations; it++ {
		par.For(numUsers, k*(1+avgTweetsPerUser), func(lo, hi int) {
			for u := lo; u < hi; u++ {
				urow := user.Row(u)
				for c := range urow {
					urow[c] = 0
				}
				mine := tweetsOf[starts[u]:starts[u+1]]
				for _, i := range mine {
					trow := tweet.Row(i)
					for c := range urow {
						urow[c] += trow[c]
					}
				}
				if len(mine) > 0 {
					inv := 1 / float64(len(mine))
					for c := range urow {
						urow[c] *= inv
					}
				}
			}
		})
		par.For(n, 3*k, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				trow := tweet.Row(i)
				if c := revealed[i]; c >= 0 && c < k {
					for q := range trow {
						trow[q] = 0
					}
					trow[c] = 1
					continue
				}
				srow := scores.Row(i)
				u := owner[i]
				for q := range trow {
					prior := 0.0
					if u >= 0 && u < numUsers {
						prior = user.At(u, q)
					}
					trow[q] = (1-opts.Mu)*srow[q] + opts.Mu*prior
				}
			}
		})
	}

	res := &UserRegResult{
		TweetClasses: tweet.RowArgMax(),
		UserClasses:  user.RowArgMax(),
	}
	return res
}

// invertOwners builds the user→tweets adjacency: tweets of user u are
// tweetsOf[starts[u]:starts[u+1]], in tweet order. Tweets with an
// out-of-range owner are dropped.
func invertOwners(owner []int, numUsers, n int) (tweetsOf, starts []int) {
	starts = make([]int, numUsers+1)
	for _, u := range owner {
		if u >= 0 && u < numUsers {
			starts[u+1]++
		}
	}
	for u := 0; u < numUsers; u++ {
		starts[u+1] += starts[u]
	}
	tweetsOf = make([]int, starts[numUsers])
	next := append([]int(nil), starts[:numUsers]...)
	for i, u := range owner {
		if u >= 0 && u < numUsers {
			tweetsOf[next[u]] = i
			next[u]++
		}
	}
	return tweetsOf, starts
}
