package baseline

import (
	"testing"

	"triclust/internal/eval"
	"triclust/internal/lexicon"
	"triclust/internal/sparse"
	"triclust/internal/synth"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

func fixture(t testing.TB, seed int64) (*synth.Dataset, *tgraph.Graph) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.NumUsers = 90
	cfg.Days = 10
	cfg.ElectionDay = 7
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g := tgraph.Build(d.Corpus, tgraph.BuildOptions{Weighting: text.TFIDF, MinDF: 2})
	return d, g
}

func owners(c *tgraph.Corpus) []int {
	out := make([]int, len(c.Tweets))
	for i := range c.Tweets {
		out[i] = c.Tweets[i].User
	}
	return out
}

func TestNaiveBayesLearnsPlantedClasses(t *testing.T) {
	d, g := fixture(t, 1)
	nb := TrainNaiveBayes(g.Xp, d.TweetClass, 3)
	pred := nb.Predict(g.Xp)
	if acc := eval.Accuracy(pred, d.TweetClass); acc < 0.8 {
		t.Fatalf("NB train accuracy = %.3f", acc)
	}
}

func TestNaiveBayesGeneralizes(t *testing.T) {
	d, g := fixture(t, 2)
	// Train on half the tweets, evaluate on the other half.
	train := RevealLabels(d.TweetClass, 0.5, 3)
	nb := TrainNaiveBayes(g.Xp, train, 3)
	pred := nb.Predict(g.Xp)
	heldTruth := make([]int, len(d.TweetClass))
	for i := range heldTruth {
		if train[i] >= 0 {
			heldTruth[i] = -1 // score held-out only
		} else {
			heldTruth[i] = d.TweetClass[i]
		}
	}
	if acc := eval.Accuracy(pred, heldTruth); acc < 0.7 {
		t.Fatalf("NB held-out accuracy = %.3f", acc)
	}
}

func TestNaiveBayesNoLabels(t *testing.T) {
	x := sparse.FromDenseRows([][]float64{{1, 0}, {0, 1}})
	nb := TrainNaiveBayes(x, []int{-1, -1}, 2)
	pred := nb.Predict(x)
	if len(pred) != 2 {
		t.Fatal("prediction length wrong")
	}
}

func TestNaiveBayesLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainNaiveBayes(sparse.Zeros(2, 2), []int{0}, 2)
}

func TestSVMLearnsPlantedClasses(t *testing.T) {
	d, g := fixture(t, 4)
	svm := TrainSVM(g.Xp, d.TweetClass, 3, DefaultSVMOptions())
	pred := svm.Predict(g.Xp)
	if acc := eval.Accuracy(pred, d.TweetClass); acc < 0.8 {
		t.Fatalf("SVM train accuracy = %.3f", acc)
	}
}

func TestSVMEmptyTrainingSet(t *testing.T) {
	x := sparse.FromDenseRows([][]float64{{1, 0}})
	svm := TrainSVM(x, []int{-1}, 2, DefaultSVMOptions())
	if got := svm.Predict(x); len(got) != 1 {
		t.Fatal("predict length wrong")
	}
}

func TestSVMDeterministic(t *testing.T) {
	d, g := fixture(t, 5)
	a := TrainSVM(g.Xp, d.TweetClass, 3, DefaultSVMOptions()).Predict(g.Xp)
	b := TrainSVM(g.Xp, d.TweetClass, 3, DefaultSVMOptions()).Predict(g.Xp)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different SVM predictions")
		}
	}
}

func TestLabelPropagationGraphPath(t *testing.T) {
	// 0 - 1 - 2   3 - 4; label 0 as class 0, 4 as class 1.
	g := sparse.FromDenseRows([][]float64{
		{0, 1, 0, 0, 0},
		{1, 0, 1, 0, 0},
		{0, 1, 0, 0, 0},
		{0, 0, 0, 0, 1},
		{0, 0, 0, 1, 0},
	})
	labels := []int{0, -1, -1, -1, 1}
	pred := LabelPropagationGraph(g, labels, 2, DefaultLPOptions())
	if pred[1] != 0 || pred[2] != 0 {
		t.Fatalf("component A mislabeled: %v", pred)
	}
	if pred[3] != 1 {
		t.Fatalf("component B mislabeled: %v", pred)
	}
}

func TestLabelPropagationGraphUnreachable(t *testing.T) {
	g := sparse.FromDenseRows([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 0}, // isolated, unlabeled
	})
	pred := LabelPropagationGraph(g, []int{0, -1, -1}, 2, DefaultLPOptions())
	if pred[2] != -1 {
		t.Fatalf("isolated node should stay unlabeled, got %d", pred[2])
	}
}

func TestLabelPropagationBipartiteSharedWords(t *testing.T) {
	// Tweets 0,1 share word 0; tweets 2,3 share word 1. Label 0 and 2.
	x := sparse.FromDenseRows([][]float64{
		{1, 0},
		{1, 0},
		{0, 1},
		{0, 1},
	})
	pred := LabelPropagationBipartite(x, []int{0, -1, 1, -1}, 2, DefaultLPOptions())
	if pred[1] != 0 || pred[3] != 1 {
		t.Fatalf("bipartite LP = %v", pred)
	}
}

func TestLabelPropagationAccuracyGrowsWithLabels(t *testing.T) {
	d, g := fixture(t, 6)
	run := func(frac float64) float64 {
		revealed := RevealLabels(d.TweetClass, frac, 1)
		pred := LabelPropagationBipartite(g.Xp, revealed, 3, DefaultLPOptions())
		return eval.Accuracy(pred, d.TweetClass)
	}
	lp5, lp10 := run(0.05), run(0.10)
	if lp10 < lp5-0.03 {
		t.Fatalf("LP-10 (%.3f) clearly worse than LP-5 (%.3f)", lp10, lp5)
	}
}

func TestRevealLabels(t *testing.T) {
	truth := make([]int, 1000)
	for i := range truth {
		truth[i] = i % 2
	}
	revealed := RevealLabels(truth, 0.1, 7)
	var n int
	for i, c := range revealed {
		if c >= 0 {
			n++
			if c != truth[i] {
				t.Fatal("revealed label differs from truth")
			}
		}
	}
	if n < 60 || n > 140 {
		t.Fatalf("revealed %d of 1000 at frac 0.1", n)
	}
	// Deterministic.
	again := RevealLabels(truth, 0.1, 7)
	for i := range revealed {
		if revealed[i] != again[i] {
			t.Fatal("RevealLabels not deterministic")
		}
	}
	// Hidden truth stays hidden.
	if RevealLabels([]int{-1}, 1, 1)[0] != -1 {
		t.Fatal("unlabeled item revealed")
	}
}

func TestUserRegBothLevels(t *testing.T) {
	d, g := fixture(t, 8)
	revealed := RevealLabels(d.TweetClass, 0.10, 2)
	res := UserReg(g.Xp, revealed, owners(d.Corpus), d.Corpus.NumUsers(), 3, DefaultUserRegOptions())
	if acc := eval.Accuracy(res.TweetClasses, d.TweetClass); acc < 0.6 {
		t.Fatalf("UserReg tweet accuracy = %.3f", acc)
	}
	if acc := eval.Accuracy(res.UserClasses, d.Corpus.UserLabels()); acc < 0.5 {
		t.Fatalf("UserReg user accuracy = %.3f", acc)
	}
}

func TestUserRegClampsSeeds(t *testing.T) {
	d, g := fixture(t, 9)
	revealed := RevealLabels(d.TweetClass, 0.2, 3)
	res := UserReg(g.Xp, revealed, owners(d.Corpus), d.Corpus.NumUsers(), 3, DefaultUserRegOptions())
	for i, c := range revealed {
		if c >= 0 && res.TweetClasses[i] != c {
			t.Fatalf("seed %d drifted from %d to %d", i, c, res.TweetClasses[i])
		}
	}
}

func TestESSARecoversTweetClusters(t *testing.T) {
	d, g := fixture(t, 10)
	lex := d.PlantedLexicon(0.4, 0.05, 11)
	lex.Merge(lexicon.Builtin())
	pred, res, err := ESSA(g.Xp, lex.Sf0(g.Vocab, 3, 0.8), 3, DefaultESSAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("ESSA did not iterate")
	}
	if acc := eval.Accuracy(pred, d.TweetClass); acc < 0.6 {
		t.Fatalf("ESSA accuracy = %.3f", acc)
	}
}

func TestBACGClustersUsers(t *testing.T) {
	d, g := fixture(t, 12)
	pred, _, err := BACG(g.Xu, g.Gu, 3, DefaultBACGOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != d.Corpus.NumUsers() {
		t.Fatal("BACG prediction length wrong")
	}
	if acc := eval.Accuracy(pred, d.Corpus.UserLabels()); acc < 0.45 {
		t.Fatalf("BACG user accuracy = %.3f (chance ≈ 0.45 at this skew)", acc)
	}
}

func TestAggregateUserFromTweets(t *testing.T) {
	tweetClasses := []int{0, 0, 1, 1, 1, -1}
	owner := []int{0, 0, 0, 1, 1, 2}
	got := AggregateUserFromTweets(tweetClasses, owner, 4, 2)
	if got[0] != 0 { // 2 votes class0, 1 vote class1
		t.Fatalf("user0 = %d", got[0])
	}
	if got[1] != 1 {
		t.Fatalf("user1 = %d", got[1])
	}
	if got[2] != -1 { // only an unlabeled tweet
		t.Fatalf("user2 = %d", got[2])
	}
	if got[3] != -1 { // no tweets
		t.Fatalf("user3 = %d", got[3])
	}
}

func TestMiniBatchAndFullBatchRun(t *testing.T) {
	d, _ := fixture(t, 14)
	lex := d.PlantedLexicon(0.4, 0.05, 11)
	cfg := DefaultShortConfig()

	mini, err := MiniBatch(d.Corpus, lex, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mini) == 0 {
		t.Fatal("mini-batch produced no steps")
	}
	full, err := FullBatch(d.Corpus, lex, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(mini) {
		t.Fatalf("driver step counts differ: %d vs %d", len(full), len(mini))
	}
	// Full-batch models grow with time.
	last := full[len(full)-1]
	if last.Result.Sp.Rows() != last.Snapshot.Graph.Xp.Rows() {
		t.Fatal("full-batch result rows mismatch cumulative snapshot")
	}
	if full[0].Result.Sp.Rows() > last.Result.Sp.Rows() {
		t.Fatal("cumulative corpus shrank")
	}
}

func TestOnlineDriverRuns(t *testing.T) {
	d, _ := fixture(t, 15)
	lex := d.PlantedLexicon(0.4, 0.05, 11)
	ocfg := DefaultShortOnlineConfig()
	steps, err := OnlineDriver(d.Corpus, lex, ocfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("online driver produced no steps")
	}
	for _, s := range steps {
		if s.Result.Sp.Rows() != s.Snapshot.Graph.Xp.Rows() {
			t.Fatal("online result rows mismatch snapshot")
		}
		if s.NewTweets == 0 {
			t.Fatal("empty snapshot not skipped")
		}
	}
}

func TestLexiconVote(t *testing.T) {
	d, g := fixture(t, 20)
	lex := d.PlantedLexicon(0.5, 0, 21)
	pred := LexiconVote(g.Xp, g.Vocab, lex, 3)
	if acc := eval.Accuracy(pred, d.TweetClass); acc < 0.55 {
		t.Fatalf("lexicon vote accuracy = %.3f", acc)
	}
	// k=2 never emits Neu.
	pred2 := LexiconVote(g.Xp, g.Vocab, lex, 2)
	for _, c := range pred2 {
		if c == lexicon.Neu {
			t.Fatal("k=2 emitted neutral")
		}
	}
}

func TestLexiconVoteEmptyLexicon(t *testing.T) {
	_, g := fixture(t, 22)
	pred := LexiconVote(g.Xp, g.Vocab, lexicon.New(), 3)
	for _, c := range pred {
		if c != lexicon.Neu {
			t.Fatal("empty lexicon should vote neutral everywhere")
		}
	}
}

func TestLexiconVoteUsers(t *testing.T) {
	d, g := fixture(t, 24)
	lex := d.PlantedLexicon(0.5, 0, 25)
	pred := LexiconVoteUsers(g.Xp, g.Vocab, lex, owners(d.Corpus), d.Corpus.NumUsers(), 3)
	if len(pred) != d.Corpus.NumUsers() {
		t.Fatal("length mismatch")
	}
	if acc := eval.Accuracy(pred, d.Corpus.UserLabels()); acc < 0.5 {
		t.Fatalf("user lexicon vote accuracy = %.3f", acc)
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	// Two groups with disjoint feature support.
	x := sparse.FromDenseRows([][]float64{
		{5, 4, 0, 0}, {4, 5, 0, 0}, {6, 5, 0, 0},
		{0, 0, 5, 4}, {0, 0, 4, 5}, {0, 0, 5, 6},
	})
	got := KMeans(x, 2, DefaultKMeansOptions())
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("group A split: %v", got)
	}
	if got[3] != got[4] || got[4] != got[5] {
		t.Fatalf("group B split: %v", got)
	}
	if got[0] == got[3] {
		t.Fatalf("groups merged: %v", got)
	}
}

func TestKMeansOnPlantedCorpus(t *testing.T) {
	d, g := fixture(t, 30)
	pred := KMeans(g.Xp, 3, DefaultKMeansOptions())
	if acc := eval.Accuracy(pred, d.TweetClass); acc < 0.5 {
		t.Fatalf("kmeans accuracy = %.3f", acc)
	}
}

func TestKMeansDegenerateInputs(t *testing.T) {
	if got := KMeans(sparse.Zeros(0, 4), 3, DefaultKMeansOptions()); len(got) != 0 {
		t.Fatal("empty input should return empty")
	}
	// All-zero rows must not crash and all land somewhere valid.
	z := sparse.Zeros(5, 4)
	got := KMeans(z, 2, DefaultKMeansOptions())
	for _, c := range got {
		if c < 0 || c >= 2 {
			t.Fatalf("invalid cluster %d", c)
		}
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	d, g := fixture(t, 31)
	_ = d
	a := KMeans(g.Xp, 3, DefaultKMeansOptions())
	b := KMeans(g.Xp, 3, DefaultKMeansOptions())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
}
