package baseline

import (
	"math"
	"math/rand"

	"triclust/internal/sparse"
)

// SVM is a one-vs-rest linear SVM trained with the Pegasos stochastic
// sub-gradient method (Smith et al. [28] use a linear SVM on tweet
// features; Pegasos reproduces it without external solvers).
type SVM struct {
	k int
	w [][]float64 // [class][feature]
	b []float64
}

// SVMOptions configure training.
type SVMOptions struct {
	// Lambda is the L2 regularization strength.
	Lambda float64
	// Epochs is the number of passes over the labeled rows.
	Epochs int
	// Seed drives the sampling order.
	Seed int64
}

// DefaultSVMOptions returns λ=1e-4, 12 epochs.
func DefaultSVMOptions() SVMOptions { return SVMOptions{Lambda: 1e-4, Epochs: 12, Seed: 1} }

// TrainSVM fits k one-vs-rest hyperplanes on the rows with label ≥ 0.
func TrainSVM(x *sparse.CSR, labels []int, k int, opts SVMOptions) *SVM {
	if len(labels) != x.Rows() {
		panic("baseline: labels length mismatch")
	}
	if opts.Lambda <= 0 {
		opts.Lambda = 1e-4
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 12
	}
	var rows []int
	for i, c := range labels {
		if c >= 0 && c < k {
			rows = append(rows, i)
		}
	}
	m := &SVM{k: k, w: make([][]float64, k), b: make([]float64, k)}
	for c := range m.w {
		m.w[c] = make([]float64, x.Cols())
	}
	if len(rows) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	t := 1
	steps := opts.Epochs * len(rows)
	for s := 0; s < steps; s++ {
		i := rows[rng.Intn(len(rows))]
		cols, vals := x.Row(i)
		eta := 1 / (opts.Lambda * float64(t))
		t++
		for c := 0; c < k; c++ {
			y := -1.0
			if labels[i] == c {
				y = 1.0
			}
			// margin = y(w·x + b)
			var dot float64
			for p, j := range cols {
				dot += m.w[c][j] * vals[p]
			}
			margin := y * (dot + m.b[c])
			// w ← (1 − ηλ)w [+ ηy·x if margin < 1]
			shrink := 1 - eta*opts.Lambda
			if shrink < 0 {
				shrink = 0
			}
			wc := m.w[c]
			for j := range wc {
				wc[j] *= shrink
			}
			if margin < 1 {
				for p, j := range cols {
					wc[j] += eta * y * vals[p]
				}
				m.b[c] += eta * y * 0.1 // damped bias update
			}
		}
	}
	return m
}

// Score returns the raw decision values of one row.
func (m *SVM) Score(cols []int, vals []float64) []float64 {
	out := make([]float64, m.k)
	for c := 0; c < m.k; c++ {
		s := m.b[c]
		for p, j := range cols {
			s += m.w[c][j] * vals[p]
		}
		out[c] = s
	}
	return out
}

// Predict classifies every row of x by the largest decision value.
func (m *SVM) Predict(x *sparse.CSR) []int {
	out := make([]int, x.Rows())
	for i := range out {
		cols, vals := x.Row(i)
		scores := m.Score(cols, vals)
		best, bestV := 0, math.Inf(-1)
		for c, v := range scores {
			if v > bestV {
				best, bestV = c, v
			}
		}
		out[i] = best
	}
	return out
}
