package baseline

import (
	"math"
	"math/rand"

	"triclust/internal/par"
	"triclust/internal/sparse"
)

// SVM is a one-vs-rest linear SVM trained with the Pegasos stochastic
// sub-gradient method (Smith et al. [28] use a linear SVM on tweet
// features; Pegasos reproduces it without external solvers).
type SVM struct {
	k int
	w [][]float64 // [class][feature]
	b []float64
}

// SVMOptions configure training.
type SVMOptions struct {
	// Lambda is the L2 regularization strength.
	Lambda float64
	// Epochs is the number of passes over the labeled rows.
	Epochs int
	// Seed drives the sampling order.
	Seed int64
}

// DefaultSVMOptions returns λ=1e-4, 12 epochs.
func DefaultSVMOptions() SVMOptions { return SVMOptions{Lambda: 1e-4, Epochs: 12, Seed: 1} }

// TrainSVM fits k one-vs-rest hyperplanes on the rows with label ≥ 0.
//
// The shrink step (1−ηλ)·w is applied lazily through a per-class scale
// factor, so one stochastic step costs O(k·nnz(row)) instead of the
// O(k·l) dense rescan of the naive implementation — on tweet matrices
// (nnz/row ≪ l) this is the difference that made Table5UserComparison
// SVM-bound. The learned hyperplanes are mathematically identical to the
// eager form (the scale is folded back in before returning).
func TrainSVM(x *sparse.CSR, labels []int, k int, opts SVMOptions) *SVM {
	if len(labels) != x.Rows() {
		panic("baseline: labels length mismatch")
	}
	if opts.Lambda <= 0 {
		opts.Lambda = 1e-4
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 12
	}
	var rows []int
	for i, c := range labels {
		if c >= 0 && c < k {
			rows = append(rows, i)
		}
	}
	m := &SVM{k: k, w: make([][]float64, k), b: make([]float64, k)}
	for c := range m.w {
		m.w[c] = make([]float64, x.Cols())
	}
	if len(rows) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	// scale[c] carries the accumulated shrink of class c's hyperplane:
	// the true weights are scale[c]·w[c].
	scale := make([]float64, k)
	for c := range scale {
		scale[c] = 1
	}
	t := 1
	steps := opts.Epochs * len(rows)
	for s := 0; s < steps; s++ {
		i := rows[rng.Intn(len(rows))]
		cols, vals := x.Row(i)
		eta := 1 / (opts.Lambda * float64(t))
		shrink := 1 - eta*opts.Lambda
		t++
		for c := 0; c < k; c++ {
			y := -1.0
			if labels[i] == c {
				y = 1.0
			}
			// margin = y(scale·w·x + b)
			wc := m.w[c]
			var dot float64
			for p, j := range cols {
				dot += wc[j] * vals[p]
			}
			margin := y * (scale[c]*dot + m.b[c])
			// w ← (1 − ηλ)w [+ ηy·x if margin < 1], shrink applied lazily.
			if shrink <= 0 {
				// Only at t = 1, where the eager update zeroes w.
				for j := range wc {
					wc[j] = 0
				}
				scale[c] = 1
			} else {
				scale[c] *= shrink
				if scale[c] < 1e-120 {
					// Fold a tiny scale back in before it underflows.
					for j := range wc {
						wc[j] *= scale[c]
					}
					scale[c] = 1
				}
			}
			if margin < 1 {
				inv := eta * y / scale[c]
				for p, j := range cols {
					wc[j] += inv * vals[p]
				}
				m.b[c] += eta * y * 0.1 // damped bias update
			}
		}
	}
	// Materialize the true hyperplanes so Score stays a plain dot product.
	for c := range m.w {
		if scale[c] != 1 {
			wc := m.w[c]
			for j := range wc {
				wc[j] *= scale[c]
			}
		}
	}
	return m
}

// ScoreInto writes the raw decision values of one row into dst (length k).
func (m *SVM) ScoreInto(dst []float64, cols []int, vals []float64) {
	for c := 0; c < m.k; c++ {
		s := m.b[c]
		wc := m.w[c]
		for p, j := range cols {
			s += wc[j] * vals[p]
		}
		dst[c] = s
	}
}

// Score returns the raw decision values of one row.
func (m *SVM) Score(cols []int, vals []float64) []float64 {
	out := make([]float64, m.k)
	m.ScoreInto(out, cols, vals)
	return out
}

// Predict classifies every row of x by the largest decision value. Rows
// are scored on the parallel row-chunk kernel; the output is independent
// of the chunking.
func (m *SVM) Predict(x *sparse.CSR) []int {
	out := make([]int, x.Rows())
	cost := m.k * (2 + x.NNZ()/maxInt(1, x.Rows()))
	par.For(x.Rows(), cost, func(lo, hi int) {
		scores := make([]float64, m.k)
		for i := lo; i < hi; i++ {
			cols, vals := x.Row(i)
			m.ScoreInto(scores, cols, vals)
			best, bestV := 0, math.Inf(-1)
			for c, v := range scores {
				if v > bestV {
					best, bestV = c, v
				}
			}
			out[i] = best
		}
	})
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
