package baseline

import (
	"triclust/internal/core"
	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// BACGOptions configure the BACG baseline.
type BACGOptions struct {
	// Beta weighs the structure (user-graph) term against the content
	// (user-feature) term.
	Beta    float64
	MaxIter int
	Tol     float64
	Seed    int64
}

// DefaultBACGOptions returns β=0.8 to match the paper's graph weighting.
func DefaultBACGOptions() BACGOptions {
	return BACGOptions{Beta: 0.8, MaxIter: 100, Tol: 1e-4, Seed: 1}
}

// BACG reproduces the behaviour of Xu et al. [34]'s model-based attributed
// graph clustering as used in Table 5: users are clustered from *both*
// structure (the user–user retweet graph) and content (their feature
// vectors), with no sentiment lexicon and no tweet layer. Concretely it
// minimizes ‖Xu − SuHuSfᵀ‖² + β·tr(SuᵀLuSu) — graph-regularized NMF on the
// user–feature matrix. Cluster ids carry no class semantics; evaluation
// maps them by majority vote exactly as for any unsupervised method.
func BACG(xu *sparse.CSR, gu *sparse.CSR, k int, opts BACGOptions) ([]int, *core.Result, error) {
	p := &core.Problem{
		Xp: sparse.Zeros(0, xu.Cols()),
		Xu: xu,
		Xr: sparse.Zeros(xu.Rows(), 0),
		Gu: gu,
	}
	cfg := core.Config{
		K:           k,
		Alpha:       0,
		Beta:        opts.Beta,
		MaxIter:     opts.MaxIter,
		Tol:         opts.Tol,
		Seed:        opts.Seed,
		LexiconInit: false,
	}
	res, err := core.FitOffline(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.UserClusters(), res, nil
}

// AggregateUserFromTweets derives user classes by majority vote over the
// user's tweet classes — the simple aggregation of Smith et al. [28] and
// Deng et al. [7] that the paper's introduction argues against. Users with
// no tweets get class −1. Ties resolve to the lower class id.
func AggregateUserFromTweets(tweetClasses, owner []int, numUsers, k int) []int {
	if len(tweetClasses) != len(owner) {
		panic("baseline: AggregateUserFromTweets length mismatch")
	}
	votes := mat.NewDense(numUsers, k)
	for i, c := range tweetClasses {
		u := owner[i]
		if u < 0 || u >= numUsers || c < 0 || c >= k {
			continue
		}
		votes.Set(u, c, votes.At(u, c)+1)
	}
	out := make([]int, numUsers)
	for u := 0; u < numUsers; u++ {
		row := votes.Row(u)
		best, bestV := -1, 0.0
		for c, v := range row {
			if v > bestV {
				best, bestV = c, v
			}
		}
		out[u] = best
	}
	return out
}
