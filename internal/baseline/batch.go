package baseline

import (
	"time"

	"triclust/internal/core"
	"triclust/internal/lexicon"
	"triclust/internal/mat"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// BatchStep records one timestamp of a streaming driver.
type BatchStep struct {
	// Time is the snapshot timestamp.
	Time int
	// Snapshot is the window's graph ("full" drivers still report the
	// current window here for evaluation, even though they fit on the
	// cumulative corpus).
	Snapshot *tgraph.Snapshot
	// Result is the fitted model whose Sp rows align with
	// Snapshot.TweetIdx and Su rows with Snapshot.Active.
	Result *core.Result
	// Elapsed is the wall-clock fit time.
	Elapsed time.Duration
	// NewTweets is n(t), the number of tweets in the window.
	NewTweets int
}

// DefaultShortConfig is the offline configuration with a reduced
// iteration budget, used by streaming drivers and benches where each of
// many timestamps triggers a full fit.
func DefaultShortConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxIter = 30
	return cfg
}

// DefaultShortOnlineConfig is the matching reduced-budget online
// configuration.
func DefaultShortOnlineConfig() core.OnlineConfig {
	cfg := core.DefaultOnlineConfig()
	cfg.MaxIter = 30
	return cfg
}

// problemFromSnapshot assembles a core.Problem for a snapshot graph with
// a prior already built for the series' shared vocabulary.
func problemFromSnapshot(s *tgraph.Snapshot, sf0 *mat.Dense) *core.Problem {
	return &core.Problem{
		Xp:  s.Graph.Xp,
		Xu:  s.Graph.Xu,
		Xr:  s.Graph.Xr,
		Gu:  s.Graph.Gu,
		Sf0: sf0,
	}
}

// seriesPrior builds the lexicon prior once for a snapshot series: every
// snapshot shares one vocabulary (SnapshotSeries fixes it globally), so
// rebuilding the l×k Sf0 per timestamp — as the drivers used to — was
// pure per-step allocation.
func seriesPrior(snaps []*tgraph.Snapshot, lex *lexicon.Lexicon, k int) *mat.Dense {
	for _, s := range snaps {
		if s.Graph.Vocab != nil {
			return lex.Sf0(s.Graph.Vocab, k, 0.8)
		}
	}
	return nil
}

// MiniBatch applies the offline tri-clustering algorithm independently to
// each snapshot — the paper's high-scalability / low-quality extreme
// ("applying tri-clustering only to new data independently at each time
// interval"). Empty snapshots are skipped.
func MiniBatch(c *tgraph.Corpus, lex *lexicon.Lexicon, cfg core.Config, step int) ([]BatchStep, error) {
	snaps := tgraph.SnapshotSeries(c, step, 2, text.TFIDF)
	sf0 := seriesPrior(snaps, lex, cfg.K)
	var out []BatchStep
	lo, _, _ := c.TimeRange()
	for i, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		start := time.Now()
		res, err := core.FitOffline(problemFromSnapshot(s, sf0), cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, BatchStep{
			Time:      lo + i*step,
			Snapshot:  s,
			Result:    res,
			Elapsed:   time.Since(start),
			NewTweets: s.Graph.Xp.Rows(),
		})
	}
	return out, nil
}

// FullBatch re-runs the offline algorithm on the *entire* corpus observed
// so far at every timestamp — the paper's high-quality / high-cost extreme
// ("applying the offline tri-clustering framework to the entire dataset
// whenever new data is added"). The returned Result of each step is the
// cumulative model; Snapshot still describes the current window so callers
// evaluate on the same tweets across drivers, via CumulativeEval.
func FullBatch(c *tgraph.Corpus, lex *lexicon.Lexicon, cfg core.Config, step int) ([]BatchStep, error) {
	snaps := tgraph.SnapshotSeries(c, step, 2, text.TFIDF)
	sf0 := seriesPrior(snaps, lex, cfg.K)
	var out []BatchStep
	lo, _, _ := c.TimeRange()
	for i, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		t := lo + i*step
		cum := tgraph.BuildSnapshot(c, lo, t+step, s.Graph.Vocab, text.TFIDF)
		start := time.Now()
		res, err := core.FitOffline(problemFromSnapshot(cum, sf0), cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, BatchStep{
			Time:      t,
			Snapshot:  cum, // cumulative: rows cover all tweets so far
			Result:    res,
			Elapsed:   time.Since(start),
			NewTweets: s.Graph.Xp.Rows(),
		})
	}
	return out, nil
}

// OnlineDriver runs the paper's online algorithm over the same snapshot
// series, so the three drivers are directly comparable (Figures 11–12).
func OnlineDriver(c *tgraph.Corpus, lex *lexicon.Lexicon, cfg core.OnlineConfig, step int) ([]BatchStep, error) {
	snaps := tgraph.SnapshotSeries(c, step, 2, text.TFIDF)
	return OnlineDriverSeries(snaps, c, lex, cfg, step)
}

// OnlineDriverSeries is OnlineDriver over a prebuilt snapshot series, so
// harnesses that run several comparisons over one corpus (Tables 4 and 5,
// the figure sweeps) can build the series once instead of re-slicing and
// re-weighting the corpus per comparison.
func OnlineDriverSeries(snaps []*tgraph.Snapshot, c *tgraph.Corpus, lex *lexicon.Lexicon, cfg core.OnlineConfig, step int) ([]BatchStep, error) {
	o := core.NewOnline(cfg)
	sf0 := seriesPrior(snaps, lex, cfg.K)
	var out []BatchStep
	lo, _, _ := c.TimeRange()
	for i, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		t := lo + i*step
		start := time.Now()
		res, err := o.Step(t, problemFromSnapshot(s, sf0), s.Active)
		if err != nil {
			return nil, err
		}
		out = append(out, BatchStep{
			Time:      t,
			Snapshot:  s,
			Result:    res,
			Elapsed:   time.Since(start),
			NewTweets: s.Graph.Xp.Rows(),
		})
	}
	return out, nil
}
