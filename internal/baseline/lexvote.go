package baseline

import (
	"triclust/internal/lexicon"
	"triclust/internal/sparse"
	"triclust/internal/text"
)

// LexiconVote is the classical lexicon-based classifier (the MPQA-style
// approach [33] that ESSA was shown to outperform): each tweet is scored
// by the weighted count of positive vs negative lexicon words; ties and
// lexicon-free tweets fall to neutral when k = 3, or to the positive
// class when k = 2.
//
// x is the n×l tweet–feature matrix over vocab. The returned classes use
// the lexicon package's constants.
func LexiconVote(x *sparse.CSR, vocab *text.Vocabulary, lex *lexicon.Lexicon, k int) []int {
	if x.Cols() != vocab.Len() {
		panic("baseline: LexiconVote vocabulary mismatch")
	}
	// Precompute per-feature polarity: +1 pos, −1 neg, 0 unknown.
	sign := make([]float64, vocab.Len())
	for j := 0; j < vocab.Len(); j++ {
		if c, ok := lex.Class(vocab.Word(j)); ok {
			if c == lexicon.Pos {
				sign[j] = 1
			} else {
				sign[j] = -1
			}
		}
	}
	out := make([]int, x.Rows())
	for i := range out {
		cols, vals := x.Row(i)
		var score float64
		for p, j := range cols {
			score += sign[j] * vals[p]
		}
		switch {
		case score > 0:
			out[i] = lexicon.Pos
		case score < 0:
			out[i] = lexicon.Neg
		default:
			if k >= 3 {
				out[i] = lexicon.Neu
			} else {
				out[i] = lexicon.Pos
			}
		}
	}
	return out
}

// LexiconVoteUsers aggregates tweet votes per user (majority), the
// simplest possible user-level lexicon method.
func LexiconVoteUsers(x *sparse.CSR, vocab *text.Vocabulary, lex *lexicon.Lexicon, owner []int, numUsers, k int) []int {
	return AggregateUserFromTweets(LexiconVote(x, vocab, lex, k), owner, numUsers, k)
}
