package baseline

import (
	"testing"
)

// The SVM and UserReg baselines dominate the Table 4/5 comparison
// harness; these micro-benchmarks track the lazy-scaling Pegasos training
// step and the parallel refinement sweeps in isolation.

func BenchmarkTrainSVM(b *testing.B) {
	d, g := fixture(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := TrainSVM(g.Xp, d.TweetClass, 3, DefaultSVMOptions()); m == nil {
			b.Fatal("nil model")
		}
	}
}

func BenchmarkSVMPredict(b *testing.B) {
	d, g := fixture(b, 1)
	m := TrainSVM(g.Xp, d.TweetClass, 3, DefaultSVMOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pred := m.Predict(g.Xp); len(pred) != g.Xp.Rows() {
			b.Fatal("bad prediction length")
		}
	}
}

func BenchmarkUserReg(b *testing.B) {
	d, g := fixture(b, 1)
	revealed := RevealLabels(d.TweetClass, 0.10, 10)
	own := owners(d.Corpus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := UserReg(g.Xp, revealed, own, d.Corpus.NumUsers(), 3, DefaultUserRegOptions())
		if len(res.TweetClasses) != g.Xp.Rows() {
			b.Fatal("bad result length")
		}
	}
}
