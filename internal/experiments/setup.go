// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) on the synthetic corpora: Tables 2–5 and
// Figures 4, 6–12. Each experiment has a function returning structured
// results plus a renderer that prints the same rows/series the paper
// reports. Absolute numbers differ from the paper (the corpus is
// synthetic); the comparisons — who wins, by roughly what factor, where
// crossovers fall — are the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"triclust/internal/core"
	"triclust/internal/lexicon"
	"triclust/internal/synth"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// Prop identifies which of the two evaluation topics to simulate.
type Prop int

const (
	// Prop30 is "Temporary Taxes to Fund Education" (balanced-ish).
	Prop30 Prop = 30
	// Prop37 is "Genetically Engineered Foods, Labeling" (heavy pos skew).
	Prop37 Prop = 37
)

func (p Prop) String() string { return fmt.Sprintf("Prop %d", int(p)) }

// Setup bundles everything an experiment needs for one topic, plus a
// memo of the expensive artifacts several experiments share — the daily
// snapshot series, the offline tri-clustering fit and the online driver
// run. Tables 4 and 5, for example, both need the same offline fit and
// the same online stream over the same corpus; before the memo each
// comparison rebuilt them from scratch. Results are deterministic
// functions of (corpus, config), so sharing them is observationally
// identical to recomputation.
type Setup struct {
	Prop    Prop
	Dataset *synth.Dataset
	Graph   *tgraph.Graph
	Lexicon *lexicon.Lexicon

	mu      sync.Mutex
	series  map[int][]*tgraph.Snapshot
	offline map[string]*core.Result
	online  map[string]*onlinePredictions
}

// onlinePredictions caches one online-driver run stitched back to global
// tweet/user indices (see onlineTweetPredictions).
type onlinePredictions struct {
	tweetPred, userPred []int
}

// Series returns the daily snapshot series of the corpus (step-wide
// windows, minDF 2, TF-IDF — the configuration every comparison uses),
// built once per Setup.
func (s *Setup) Series(step int) []*tgraph.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.series == nil {
		s.series = make(map[int][]*tgraph.Snapshot)
	}
	if snaps, ok := s.series[step]; ok {
		return snaps
	}
	snaps := tgraph.SnapshotSeries(s.Dataset.Corpus, step, 2, text.TFIDF)
	s.series[step] = snaps
	return snaps
}

// OfflineFit returns the offline tri-clustering fit of the full corpus
// at the given configuration, computed once per Setup. The returned
// result is shared: callers must treat it as read-only.
func (s *Setup) OfflineFit(cfg core.Config) (*core.Result, error) {
	key := fmt.Sprintf("%+v", cfg)
	s.mu.Lock()
	if res, ok := s.offline[key]; ok {
		s.mu.Unlock()
		return res, nil
	}
	s.mu.Unlock()
	res, err := core.FitOffline(s.Problem(cfg.K), cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.offline == nil {
		s.offline = make(map[string]*core.Result)
	}
	s.offline[key] = res
	s.mu.Unlock()
	return res, nil
}

// NewSetup generates the corpus for a topic at the given scale divisor
// (1 = paper scale, larger = proportionally smaller for fast runs) and
// builds its tripartite graph and lexicon.
func NewSetup(p Prop, scale int) (*Setup, error) {
	var cfg synth.Config
	switch p {
	case Prop30:
		cfg = synth.Prop30Config()
	case Prop37:
		cfg = synth.Prop37Config()
	default:
		return nil, fmt.Errorf("experiments: unknown prop %d", p)
	}
	cfg = synth.Scaled(cfg, scale)
	d, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	g := tgraph.Build(d.Corpus, tgraph.BuildOptions{Weighting: text.TFIDF, MinDF: 2})
	// Imperfect topical word lists (≈40% coverage, 5% misassignments)
	// merged with a general polarity lexicon — mirroring the
	// automatically built "Yes"/"No" lists of [28].
	lex := d.PlantedLexicon(0.4, 0.05, int64(p))
	lex.Merge(lexicon.Builtin())
	return &Setup{Prop: p, Dataset: d, Graph: g, Lexicon: lex}, nil
}

// Problem assembles the core.Problem for the full corpus at rank k.
func (s *Setup) Problem(k int) *core.Problem {
	return &core.Problem{
		Xp:  s.Graph.Xp,
		Xu:  s.Graph.Xu,
		Xr:  s.Graph.Xr,
		Gu:  s.Graph.Gu,
		Sf0: s.Lexicon.Sf0(s.Graph.Vocab, k, 0.8),
	}
}

// Owners returns the tweet→user index vector.
func (s *Setup) Owners() []int {
	out := make([]int, s.Dataset.Corpus.NumTweets())
	for i := range s.Dataset.Corpus.Tweets {
		out[i] = s.Dataset.Corpus.Tweets[i].User
	}
	return out
}

// ——— rendering helpers ———

// Table renders column-aligned rows. The first row is the header.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for j, cell := range r {
			if j < len(widths) && len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	for i, r := range rows {
		var b strings.Builder
		for j, cell := range r {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		if i == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(b.String(), " "))))
		}
	}
}

// Series renders an (x, y...) numeric series as aligned columns, one
// header per y column.
func Series(w io.Writer, xName string, x []float64, cols map[string][]float64, order []string) {
	rows := [][]string{append([]string{xName}, order...)}
	for i := range x {
		row := []string{fmt.Sprintf("%g", x[i])}
		for _, name := range order {
			row = append(row, fmt.Sprintf("%.2f", cols[name][i]))
		}
		rows = append(rows, row)
	}
	Table(w, rows)
}

func fmtPct(v float64) string { return fmt.Sprintf("%.2f", v*100) }
