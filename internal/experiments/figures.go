package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"triclust/internal/baseline"
	"triclust/internal/core"
	"triclust/internal/eval"
)

// ——— Figure 4: evolution of features ———

// Figure4Result holds one user's feature-frequency histograms over two
// periods.
type Figure4Result struct {
	User             int
	PeriodA, PeriodB [2]int // [from, to)
	FreqA, FreqB     map[string]int
	// Divergence is the total-variation distance between the two
	// normalized histograms (1 = disjoint, 0 = identical).
	Divergence float64
}

// Figure4FeatureEvolution compares the token frequency distribution of the
// most active user between an early and a late window, demonstrating
// Observation 1 (frequency changes; polarity persists).
func Figure4FeatureEvolution(s *Setup) *Figure4Result {
	c := s.Dataset.Corpus
	lo, hi, ok := c.TimeRange()
	if !ok {
		return &Figure4Result{FreqA: map[string]int{}, FreqB: map[string]int{}}
	}
	span := (hi - lo + 1) / 4
	if span < 1 {
		span = 1
	}
	pa := [2]int{lo, lo + span}
	pb := [2]int{hi + 1 - span, hi + 1}

	// Most active user across both periods.
	activity := map[int]int{}
	for _, tw := range c.Tweets {
		if (tw.Time >= pa[0] && tw.Time < pa[1]) || (tw.Time >= pb[0] && tw.Time < pb[1]) {
			activity[tw.User]++
		}
	}
	best, bestN := -1, 0
	for u, n := range activity {
		if n > bestN || (n == bestN && (best == -1 || u < best)) {
			best, bestN = u, n
		}
	}
	r := &Figure4Result{User: best, PeriodA: pa, PeriodB: pb,
		FreqA: map[string]int{}, FreqB: map[string]int{}}
	for _, tw := range c.Tweets {
		if tw.User != best {
			continue
		}
		switch {
		case tw.Time >= pa[0] && tw.Time < pa[1]:
			for _, tok := range tw.Tokens {
				r.FreqA[tok]++
			}
		case tw.Time >= pb[0] && tw.Time < pb[1]:
			for _, tok := range tw.Tokens {
				r.FreqB[tok]++
			}
		}
	}
	r.Divergence = totalVariation(r.FreqA, r.FreqB)
	return r
}

func totalVariation(a, b map[string]int) float64 {
	var na, nb float64
	for _, v := range a {
		na += float64(v)
	}
	for _, v := range b {
		nb += float64(v)
	}
	if na == 0 || nb == 0 {
		return 1
	}
	keys := map[string]struct{}{}
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	var tv float64
	for k := range keys {
		tv += math.Abs(float64(a[k])/na - float64(b[k])/nb)
	}
	return tv / 2
}

// RenderFigure4 prints the top tokens per period and the divergence.
func RenderFigure4(w io.Writer, r *Figure4Result) {
	fmt.Fprintf(w, "Figure 4: feature evolution for user %d (TV distance %.3f)\n", r.User, r.Divergence)
	show := func(name string, period [2]int, freq map[string]int) {
		type kv struct {
			k string
			v int
		}
		var items []kv
		for k, v := range freq {
			items = append(items, kv{k, v})
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].v != items[j].v {
				return items[i].v > items[j].v
			}
			return items[i].k < items[j].k
		})
		if len(items) > 10 {
			items = items[:10]
		}
		fmt.Fprintf(w, "  days [%d,%d) %s:", period[0], period[1], name)
		for _, it := range items {
			fmt.Fprintf(w, " %s(%d)", it.k, it.v)
		}
		fmt.Fprintln(w)
	}
	show("early", r.PeriodA, r.FreqA)
	show("late", r.PeriodB, r.FreqB)
}

// ——— Figures 6 & 7: offline parameter sweep ———

// SweepCell is one (α, β) grid point's metrics.
type SweepCell struct {
	Alpha, Beta float64
	User, Tweet eval.Metrics
}

// SweepResult is the full grid.
type SweepResult struct {
	Prop  Prop
	Cells []SweepCell
}

// Figure6and7ParamSweep sweeps α and β over the given grids and records
// user-level (Figure 6) and tweet-level (Figure 7) accuracy and NMI.
func Figure6and7ParamSweep(s *Setup, alphas, betas []float64, maxIter int) (*SweepResult, error) {
	out := &SweepResult{Prop: s.Prop}
	tweetTruth := s.Dataset.Corpus.TweetLabels()
	userTruth := s.Dataset.Corpus.UserLabels()
	for _, a := range alphas {
		for _, b := range betas {
			cfg := core.DefaultConfig()
			cfg.Alpha, cfg.Beta = a, b
			cfg.MaxIter = maxIter
			res, err := core.FitOffline(s.Problem(cfg.K), cfg)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, SweepCell{
				Alpha: a, Beta: b,
				User:  eval.Evaluate(res.UserClusters(), userTruth),
				Tweet: eval.Evaluate(res.TweetClusters(), tweetTruth),
			})
		}
	}
	return out, nil
}

// Best returns the grid point maximizing the chosen metric
// (metric(cell) must return the value to maximize).
func (r *SweepResult) Best(metric func(SweepCell) float64) SweepCell {
	best := r.Cells[0]
	for _, c := range r.Cells[1:] {
		if metric(c) > metric(best) {
			best = c
		}
	}
	return best
}

// RenderSweep prints the grid as four matrices (user/tweet × acc/NMI).
func RenderSweep(w io.Writer, r *SweepResult, alphas, betas []float64) {
	get := func(a, b float64) SweepCell {
		for _, c := range r.Cells {
			if c.Alpha == a && c.Beta == b {
				return c
			}
		}
		return SweepCell{}
	}
	grid := func(title string, f func(SweepCell) float64) {
		fmt.Fprintf(w, "%s (%s): rows α, cols β\n", title, r.Prop)
		header := []string{"α\\β"}
		for _, b := range betas {
			header = append(header, fmt.Sprintf("%.1f", b))
		}
		rows := [][]string{header}
		for _, a := range alphas {
			row := []string{fmt.Sprintf("%.1f", a)}
			for _, b := range betas {
				row = append(row, fmt.Sprintf("%.1f", f(get(a, b))*100))
			}
			rows = append(rows, row)
		}
		Table(w, rows)
	}
	grid("Figure 6a: user-level accuracy", func(c SweepCell) float64 { return c.User.Accuracy })
	grid("Figure 6b: user-level NMI", func(c SweepCell) float64 { return c.User.NMI })
	grid("Figure 7a: tweet-level accuracy", func(c SweepCell) float64 { return c.Tweet.Accuracy })
	grid("Figure 7b: tweet-level NMI", func(c SweepCell) float64 { return c.Tweet.NMI })
}

// ——— Figure 8: convergence ———

// ConvergenceResult carries the per-iteration Frobenius losses.
type ConvergenceResult struct {
	Prop Prop
	// TweetFeature, UserFeature and Total are √ of the recorded squared
	// losses per iteration, matching Figure 8's y axes (‖·‖_F).
	TweetFeature, UserFeature, Total []float64
	Iterations                       int
}

// Figure8Convergence runs the offline solver with tolerance disabled and
// records the loss trajectories of Eq. 2, Eq. 3 and Eq. 1.
func Figure8Convergence(s *Setup, iters int) (*ConvergenceResult, error) {
	cfg := core.DefaultConfig()
	cfg.MaxIter = iters
	cfg.Tol = -1 // disable the convergence check: record every iteration
	res, err := core.FitOffline(s.Problem(cfg.K), cfg)
	if err != nil {
		return nil, err
	}
	out := &ConvergenceResult{Prop: s.Prop, Iterations: res.Iterations}
	for _, lb := range res.History {
		out.TweetFeature = append(out.TweetFeature, math.Sqrt(lb.TweetFeature))
		out.UserFeature = append(out.UserFeature, math.Sqrt(lb.UserFeature))
		out.Total = append(out.Total, math.Sqrt(lb.Total))
	}
	return out, nil
}

// RenderFigure8 prints the three loss series.
func RenderFigure8(w io.Writer, r *ConvergenceResult) {
	fmt.Fprintf(w, "Figure 8: convergence on %s\n", r.Prop)
	x := make([]float64, len(r.Total))
	for i := range x {
		x[i] = float64(i + 1)
	}
	Series(w, "iter", x, map[string][]float64{
		"||Xp-SpHpSf'||F": r.TweetFeature,
		"||Xu-SuHuSf'||F": r.UserFeature,
		"total":           r.Total,
	}, []string{"||Xp-SpHpSf'||F", "||Xu-SuHuSf'||F", "total"})
}

// ——— Figure 9: online accuracy vs (α, τ) ———

// OnlineSweepCell is one (α, τ) or γ grid point.
type OnlineSweepCell struct {
	Alpha, Tau, Gamma float64
	User, Tweet       float64 // accuracies
}

// Figure9OnlineAlphaTau sweeps α and τ with β=0.8, γ=0.2, w=2 and records
// tweet- and user-level accuracy of the online algorithm.
func Figure9OnlineAlphaTau(s *Setup, alphas, taus []float64, maxIter int) ([]OnlineSweepCell, error) {
	var out []OnlineSweepCell
	for _, a := range alphas {
		for _, tau := range taus {
			cfg := core.DefaultOnlineConfig()
			cfg.Alpha, cfg.Tau = a, tau
			cfg.Window = 4 // multiple snapshots must contribute for τ to matter
			cfg.MaxIter = maxIter
			tweetAcc, userAcc, err := onlineAccuracy(s, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, OnlineSweepCell{Alpha: a, Tau: tau, Gamma: cfg.Gamma,
				User: userAcc, Tweet: tweetAcc})
		}
	}
	return out, nil
}

// Figure10Gamma sweeps γ with α=τ=0.9 fixed.
func Figure10Gamma(s *Setup, gammas []float64, maxIter int) ([]OnlineSweepCell, error) {
	var out []OnlineSweepCell
	for _, g := range gammas {
		cfg := core.DefaultOnlineConfig()
		cfg.Gamma = g
		cfg.Window = 4
		cfg.MaxIter = maxIter
		tweetAcc, userAcc, err := onlineAccuracy(s, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, OnlineSweepCell{Alpha: cfg.Alpha, Tau: cfg.Tau, Gamma: g,
			User: userAcc, Tweet: tweetAcc})
	}
	return out, nil
}

// onlineAccuracy runs the online driver and returns overall tweet- and
// user-level accuracy (user truth taken at each snapshot's timestamp, so
// evolving users are scored against their stance *at that time*).
func onlineAccuracy(s *Setup, cfg core.OnlineConfig) (tweetAcc, userAcc float64, err error) {
	steps, err := baseline.OnlineDriver(s.Dataset.Corpus, s.Lexicon, cfg, 1)
	if err != nil {
		return 0, 0, err
	}
	var tSum, tW, uSum, uW float64
	for _, st := range steps {
		truthT := make([]int, len(st.Snapshot.TweetIdx))
		for i, g := range st.Snapshot.TweetIdx {
			truthT[i] = s.Dataset.TweetClass[g]
		}
		a := eval.Accuracy(st.Result.TweetClusters(), truthT)
		tSum += a * float64(len(truthT))
		tW += float64(len(truthT))

		truthU := make([]int, len(st.Snapshot.Active))
		for i, g := range st.Snapshot.Active {
			truthU[i] = s.Dataset.StanceAt(g, st.Time)
		}
		au := eval.Accuracy(st.Result.UserClusters(), truthU)
		uSum += au * float64(len(truthU))
		uW += float64(len(truthU))
	}
	if tW == 0 || uW == 0 {
		return 0, 0, fmt.Errorf("experiments: no snapshots to evaluate")
	}
	return tSum / tW, uSum / uW, nil
}

// RenderOnlineSweep prints (α, τ) or γ sweeps.
func RenderOnlineSweep(w io.Writer, title string, cells []OnlineSweepCell, byGamma bool) {
	fmt.Fprintln(w, title)
	var rows [][]string
	if byGamma {
		rows = append(rows, []string{"γ", "user acc", "tweet acc"})
		for _, c := range cells {
			rows = append(rows, []string{fmt.Sprintf("%.1f", c.Gamma), fmtPct(c.User), fmtPct(c.Tweet)})
		}
	} else {
		rows = append(rows, []string{"α", "τ", "user acc", "tweet acc"})
		for _, c := range cells {
			rows = append(rows, []string{fmt.Sprintf("%.1f", c.Alpha), fmt.Sprintf("%.1f", c.Tau),
				fmtPct(c.User), fmtPct(c.Tweet)})
		}
	}
	Table(w, rows)
}

// ——— Figures 11 & 12: online vs mini-batch vs full-batch timelines ———

// TimelinePoint is one timestamp of one driver.
type TimelinePoint struct {
	Time      int
	NewTweets int
	Elapsed   time.Duration
	TweetAcc  float64
	UserAcc   float64
}

// TimelineResult carries the three drivers' series.
type TimelineResult struct {
	Prop                   Prop
	Online, Mini, Full     []TimelinePoint
	OnlineTotal, MiniTotal time.Duration
	FullTotal              time.Duration
}

// Figure11and12Online runs the online algorithm against the mini-batch and
// full-batch extremes over the daily stream and records running time and
// both accuracy levels per timestamp (Figures 11 and 12).
func Figure11and12Online(s *Setup, cfg core.OnlineConfig, step int) (*TimelineResult, error) {
	offCfg := cfg.Config

	onSteps, err := baseline.OnlineDriver(s.Dataset.Corpus, s.Lexicon, cfg, step)
	if err != nil {
		return nil, err
	}
	miniSteps, err := baseline.MiniBatch(s.Dataset.Corpus, s.Lexicon, offCfg, step)
	if err != nil {
		return nil, err
	}
	fullSteps, err := baseline.FullBatch(s.Dataset.Corpus, s.Lexicon, offCfg, step)
	if err != nil {
		return nil, err
	}

	out := &TimelineResult{Prop: s.Prop}
	score := func(st baseline.BatchStep, currentOnly bool) TimelinePoint {
		pt := TimelinePoint{Time: st.Time, NewTweets: st.NewTweets, Elapsed: st.Elapsed}
		truthT := make([]int, len(st.Snapshot.TweetIdx))
		for i, g := range st.Snapshot.TweetIdx {
			if currentOnly && s.Dataset.Corpus.Tweets[g].Time != st.Time {
				// Full-batch snapshots are cumulative: score only the
				// current window so all drivers grade the same tweets.
				truthT[i] = -1
				continue
			}
			truthT[i] = s.Dataset.TweetClass[g]
		}
		pt.TweetAcc = eval.Accuracy(st.Result.TweetClusters(), truthT)
		truthU := make([]int, len(st.Snapshot.Active))
		for i, g := range st.Snapshot.Active {
			truthU[i] = s.Dataset.StanceAt(g, st.Time)
		}
		pt.UserAcc = eval.Accuracy(st.Result.UserClusters(), truthU)
		return pt
	}
	for _, st := range onSteps {
		pt := score(st, false)
		out.Online = append(out.Online, pt)
		out.OnlineTotal += pt.Elapsed
	}
	for _, st := range miniSteps {
		pt := score(st, false)
		out.Mini = append(out.Mini, pt)
		out.MiniTotal += pt.Elapsed
	}
	for _, st := range fullSteps {
		pt := score(st, true)
		out.Full = append(out.Full, pt)
		out.FullTotal += pt.Elapsed
	}
	return out, nil
}

// Mean accuracy helpers over a driver's series.
func meanTweetAcc(pts []TimelinePoint) float64 {
	var s, w float64
	for _, p := range pts {
		s += p.TweetAcc * float64(p.NewTweets)
		w += float64(p.NewTweets)
	}
	if w == 0 {
		return 0
	}
	return s / w
}

func meanUserAcc(pts []TimelinePoint) float64 {
	var s float64
	for _, p := range pts {
		s += p.UserAcc
	}
	if len(pts) == 0 {
		return 0
	}
	return s / float64(len(pts))
}

// Summary aggregates a timeline into the headline comparisons.
type Summary struct {
	OnlineTweetAcc, MiniTweetAcc, FullTweetAcc float64
	OnlineUserAcc, MiniUserAcc, FullUserAcc    float64
	OnlineTime, MiniTime, FullTime             time.Duration
}

// Summarize reduces a TimelineResult.
func (r *TimelineResult) Summarize() Summary {
	return Summary{
		OnlineTweetAcc: meanTweetAcc(r.Online),
		MiniTweetAcc:   meanTweetAcc(r.Mini),
		FullTweetAcc:   meanTweetAcc(r.Full),
		OnlineUserAcc:  meanUserAcc(r.Online),
		MiniUserAcc:    meanUserAcc(r.Mini),
		FullUserAcc:    meanUserAcc(r.Full),
		OnlineTime:     r.OnlineTotal,
		MiniTime:       r.MiniTotal,
		FullTime:       r.FullTotal,
	}
}

// RenderTimeline prints the per-timestamp series and totals.
func RenderTimeline(w io.Writer, r *TimelineResult) {
	fmt.Fprintf(w, "Figure %d: online vs mini-batch vs full-batch on %s\n",
		map[Prop]int{Prop30: 11, Prop37: 12}[r.Prop], r.Prop)
	rows := [][]string{{"t", "n(t)", "online ms", "mini ms", "full ms",
		"onl tw%", "mini tw%", "full tw%", "onl us%", "mini us%", "full us%"}}
	for i := range r.Online {
		var mini, full TimelinePoint
		if i < len(r.Mini) {
			mini = r.Mini[i]
		}
		if i < len(r.Full) {
			full = r.Full[i]
		}
		on := r.Online[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", on.Time), fmt.Sprintf("%d", on.NewTweets),
			fmt.Sprintf("%.1f", float64(on.Elapsed.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(mini.Elapsed.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(full.Elapsed.Microseconds())/1000),
			fmtPct(on.TweetAcc), fmtPct(mini.TweetAcc), fmtPct(full.TweetAcc),
			fmtPct(on.UserAcc), fmtPct(mini.UserAcc), fmtPct(full.UserAcc),
		})
	}
	Table(w, rows)
	sum := r.Summarize()
	fmt.Fprintf(w, "totals: online %v, mini-batch %v, full-batch %v\n",
		sum.OnlineTime.Round(time.Millisecond), sum.MiniTime.Round(time.Millisecond), sum.FullTime.Round(time.Millisecond))
	fmt.Fprintf(w, "mean tweet acc: online %s, mini %s, full %s\n",
		fmtPct(sum.OnlineTweetAcc), fmtPct(sum.MiniTweetAcc), fmtPct(sum.FullTweetAcc))
	fmt.Fprintf(w, "mean user acc: online %s, mini %s, full %s\n",
		fmtPct(sum.OnlineUserAcc), fmtPct(sum.MiniUserAcc), fmtPct(sum.FullUserAcc))
}
