package experiments

import (
	"fmt"
	"io"
	"sort"

	"triclust/internal/baseline"
	"triclust/internal/core"
	"triclust/internal/eval"
	"triclust/internal/lexicon"
)

// ——— Table 2: top-8 words with highest frequency per class ———

// WordCount pairs a word with its corpus frequency.
type WordCount struct {
	Word  string
	Count int
}

// Table2Result holds the per-class top words.
type Table2Result struct {
	Pos, Neg []WordCount
}

// Table2TopWords computes the highest-frequency words among tweets of each
// polar class (paper Table 2). topN is 8 in the paper.
func Table2TopWords(s *Setup, topN int) *Table2Result {
	counts := [2]map[string]int{{}, {}}
	for i, tw := range s.Dataset.Corpus.Tweets {
		c := s.Dataset.TweetClass[i]
		if c != lexicon.Pos && c != lexicon.Neg {
			continue
		}
		for _, tok := range tw.Tokens {
			counts[c][tok]++
		}
	}
	top := func(m map[string]int) []WordCount {
		out := make([]WordCount, 0, len(m))
		for w, n := range m {
			out = append(out, WordCount{w, n})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Count != out[j].Count {
				return out[i].Count > out[j].Count
			}
			return out[i].Word < out[j].Word
		})
		if len(out) > topN {
			out = out[:topN]
		}
		return out
	}
	return &Table2Result{Pos: top(counts[lexicon.Pos]), Neg: top(counts[lexicon.Neg])}
}

// RenderTable2 prints the result in the paper's layout.
func RenderTable2(w io.Writer, r *Table2Result) {
	fmt.Fprintln(w, "Table 2: Top words with highest frequency per class")
	line := func(name string, words []WordCount) {
		fmt.Fprintf(w, "%-4s", name)
		for i, wc := range words {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s (%d)", wc.Word, wc.Count)
		}
		fmt.Fprintln(w)
	}
	line("Pos", r.Pos)
	line("Neg", r.Neg)
}

// ——— Table 3: statistics of tweets and users ———

// Table3Row is one topic's statistics.
type Table3Row struct {
	Prop                      Prop
	TweetPos, TweetNeg        int
	UserPos, UserNeg, UserNeu int
	UserUnlabeled             int
}

// Table3Stats counts labeled tweets and users (paper Table 3).
func Table3Stats(s *Setup) Table3Row {
	r := Table3Row{Prop: s.Prop}
	for _, tw := range s.Dataset.Corpus.Tweets {
		switch tw.Label {
		case lexicon.Pos:
			r.TweetPos++
		case lexicon.Neg:
			r.TweetNeg++
		}
	}
	for _, u := range s.Dataset.Corpus.Users {
		switch u.Label {
		case lexicon.Pos:
			r.UserPos++
		case lexicon.Neg:
			r.UserNeg++
		case lexicon.Neu:
			r.UserNeu++
		default:
			r.UserUnlabeled++
		}
	}
	return r
}

// RenderTable3 prints rows for any number of topics.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Statistics of tweets and users")
	out := [][]string{{"Prop", "Tweet Pos", "Tweet Neg", "User Pos", "User Neg", "User Neu", "unlabeled"}}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", int(r.Prop)),
			fmt.Sprintf("%d", r.TweetPos), fmt.Sprintf("%d", r.TweetNeg),
			fmt.Sprintf("%d", r.UserPos), fmt.Sprintf("%d", r.UserNeg),
			fmt.Sprintf("%d", r.UserNeu), fmt.Sprintf("%d", r.UserUnlabeled),
		})
	}
	Table(w, out)
}

// ——— Tables 4 & 5: method comparisons ———

// MethodScore is one method's metrics on one topic.
type MethodScore struct {
	Method   string
	Group    string // Supervised / Semi-supervised / Unsupervised
	Accuracy float64
	NMI      float64 // NaN when the paper leaves the cell blank
	HasNMI   bool
}

// ComparisonResult holds one topic's method column.
type ComparisonResult struct {
	Prop   Prop
	Scores []MethodScore
}

// Table4TweetLevel reproduces Table 4: tweet-level sentiment comparison of
// SVM, NB, LP-5, LP-10, UserReg-10, ESSA, Tri-clustering and Online
// tri-clustering on one topic.
func Table4TweetLevel(s *Setup, quick bool) (*ComparisonResult, error) {
	truth := s.Dataset.Corpus.TweetLabels()
	owners := s.Owners()
	k := 3
	res := &ComparisonResult{Prop: s.Prop}
	add := func(m, g string, pred []int, withNMI bool) {
		sc := MethodScore{Method: m, Group: g, Accuracy: eval.Accuracy(pred, truth), HasNMI: withNMI}
		if withNMI {
			sc.NMI = eval.NMI(pred, truth)
		}
		res.Scores = append(res.Scores, sc)
	}

	// Supervised: train on an 80% split, score held-out items only, then
	// report that held-out accuracy (the paper's cross-validation
	// analogue). Prediction over all rows; unseen rows carry the truth.
	trainLabels := baseline.RevealLabels(truth, 0.8, 80)
	heldTruth := make([]int, len(truth))
	for i := range truth {
		if trainLabels[i] >= 0 {
			heldTruth[i] = -1
		} else {
			heldTruth[i] = truth[i]
		}
	}
	addHeld := func(m, g string, pred []int) {
		res.Scores = append(res.Scores, MethodScore{Method: m, Group: g,
			Accuracy: eval.Accuracy(pred, heldTruth)})
	}
	svm := baseline.TrainSVM(s.Graph.Xp, trainLabels, k, baseline.DefaultSVMOptions())
	addHeld("SVM", "Supervised", svm.Predict(s.Graph.Xp))
	nb := baseline.TrainNaiveBayes(s.Graph.Xp, trainLabels, k)
	addHeld("NB", "Supervised", nb.Predict(s.Graph.Xp))

	// Semi-supervised.
	lp5 := baseline.LabelPropagationBipartite(s.Graph.Xp, baseline.RevealLabels(truth, 0.05, 5), k, baseline.DefaultLPOptions())
	add("LP-5", "Semi-supervised", lp5, false)
	lp10 := baseline.LabelPropagationBipartite(s.Graph.Xp, baseline.RevealLabels(truth, 0.10, 10), k, baseline.DefaultLPOptions())
	add("LP-10", "Semi-supervised", lp10, false)
	ur := baseline.UserReg(s.Graph.Xp, baseline.RevealLabels(truth, 0.10, 10), owners,
		s.Dataset.Corpus.NumUsers(), k, baseline.DefaultUserRegOptions())
	add("UserReg-10", "Semi-supervised", ur.TweetClasses, false)

	// Unsupervised.
	essaOpts := baseline.DefaultESSAOptions()
	cfg := core.DefaultConfig()
	ocfg := core.DefaultOnlineConfig()
	// The synthetic daily snapshots are thinner than the paper's, so the
	// harness widens the history window (the paper: "time window size w
	// is related to the granularity of timestamp").
	ocfg.Window = 4
	if quick {
		essaOpts.MaxIter = 30
		cfg.MaxIter = 30
		ocfg.MaxIter = 30
	}
	essaPred, _, err := baseline.ESSA(s.Graph.Xp, s.Lexicon.Sf0(s.Graph.Vocab, k, 0.8), k, essaOpts)
	if err != nil {
		return nil, err
	}
	add("ESSA", "Unsupervised", essaPred, true)

	tri, err := s.OfflineFit(cfg)
	if err != nil {
		return nil, err
	}
	add("Tri-clustering", "Unsupervised", tri.TweetClusters(), true)

	onPred, _, err := onlineTweetPredictions(s, ocfg)
	if err != nil {
		return nil, err
	}
	add("Online tri-clustering", "Unsupervised", onPred, true)
	return res, nil
}

// Table5UserLevel reproduces Table 5: user-level comparison of SVM, NB,
// LP-5, LP-10, UserReg-10, BACG, Tri-clustering and Online tri-clustering.
func Table5UserLevel(s *Setup, quick bool) (*ComparisonResult, error) {
	truth := s.Dataset.Corpus.UserLabels()
	tweetTruth := s.Dataset.Corpus.TweetLabels()
	owners := s.Owners()
	k := 3
	m := s.Dataset.Corpus.NumUsers()
	res := &ComparisonResult{Prop: s.Prop}
	add := func(mName, g string, pred []int, withNMI bool) {
		sc := MethodScore{Method: mName, Group: g, Accuracy: eval.Accuracy(pred, truth), HasNMI: withNMI}
		if withNMI {
			sc.NMI = eval.NMI(pred, truth)
		}
		res.Scores = append(res.Scores, sc)
	}

	// Supervised: classify users from their aggregated features (Xu).
	trainU := baseline.RevealLabels(truth, 0.8, 81)
	heldTruth := make([]int, len(truth))
	for i := range truth {
		if trainU[i] >= 0 {
			heldTruth[i] = -1
		} else {
			heldTruth[i] = truth[i]
		}
	}
	addHeld := func(mName, g string, pred []int) {
		res.Scores = append(res.Scores, MethodScore{Method: mName, Group: g,
			Accuracy: eval.Accuracy(pred, heldTruth)})
	}
	svm := baseline.TrainSVM(s.Graph.Xu, trainU, k, baseline.DefaultSVMOptions())
	addHeld("SVM", "Supervised", svm.Predict(s.Graph.Xu))
	nb := baseline.TrainNaiveBayes(s.Graph.Xu, trainU, k)
	addHeld("NB", "Supervised", nb.Predict(s.Graph.Xu))

	// Semi-supervised: LP on the user–user retweet graph [30].
	lp5 := baseline.LabelPropagationGraph(s.Graph.Gu, baseline.RevealLabels(truth, 0.05, 5), k, baseline.DefaultLPOptions())
	add("LP-5", "Semi-supervised", lp5, false)
	lp10 := baseline.LabelPropagationGraph(s.Graph.Gu, baseline.RevealLabels(truth, 0.10, 10), k, baseline.DefaultLPOptions())
	add("LP-10", "Semi-supervised", lp10, false)
	// UserReg user level: aggregate its tweet sentiments [7].
	ur := baseline.UserReg(s.Graph.Xp, baseline.RevealLabels(tweetTruth, 0.10, 10), owners, m, k, baseline.DefaultUserRegOptions())
	add("UserReg-10", "Semi-supervised", ur.UserClasses, false)

	// Unsupervised.
	bacgOpts := baseline.DefaultBACGOptions()
	cfg := core.DefaultConfig()
	ocfg := core.DefaultOnlineConfig()
	ocfg.Window = 4 // see Table4TweetLevel
	if quick {
		bacgOpts.MaxIter = 30
		cfg.MaxIter = 30
		ocfg.MaxIter = 30
	}
	bacgPred, _, err := baseline.BACG(s.Graph.Xu, s.Graph.Gu, k, bacgOpts)
	if err != nil {
		return nil, err
	}
	add("BACG", "Unsupervised", bacgPred, true)

	tri, err := s.OfflineFit(cfg)
	if err != nil {
		return nil, err
	}
	add("Tri-clustering", "Unsupervised", tri.UserClusters(), true)

	_, onUsers, err := onlineTweetPredictions(s, ocfg)
	if err != nil {
		return nil, err
	}
	add("Online tri-clustering", "Unsupervised", onUsers, true)
	return res, nil
}

// onlineTweetPredictions runs the online driver over the corpus and
// stitches per-snapshot predictions back to global tweet indices and
// final per-user classes (last estimate per user). The run is memoized
// on the Setup (keyed by configuration) and fed from the Setup's cached
// snapshot series: Tables 4 and 5 consume the tweet- and user-level
// views of one identical stream, so the second table reuses the first's
// drive instead of rebuilding corpus, series, prior and solver state.
func onlineTweetPredictions(s *Setup, cfg core.OnlineConfig) (tweetPred, userPred []int, err error) {
	key := fmt.Sprintf("%+v", cfg)
	s.mu.Lock()
	if p, ok := s.online[key]; ok {
		s.mu.Unlock()
		return p.tweetPred, p.userPred, nil
	}
	s.mu.Unlock()
	tweetPred, userPred, err = onlineTweetPredictionsUncached(s, cfg)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	if s.online == nil {
		s.online = make(map[string]*onlinePredictions)
	}
	s.online[key] = &onlinePredictions{tweetPred: tweetPred, userPred: userPred}
	s.mu.Unlock()
	return tweetPred, userPred, nil
}

func onlineTweetPredictionsUncached(s *Setup, cfg core.OnlineConfig) (tweetPred, userPred []int, err error) {
	steps, err := baseline.OnlineDriverSeries(s.Series(1), s.Dataset.Corpus, s.Lexicon, cfg, 1)
	if err != nil {
		return nil, nil, err
	}
	n := s.Dataset.Corpus.NumTweets()
	m := s.Dataset.Corpus.NumUsers()
	tweetPred = make([]int, n)
	for i := range tweetPred {
		tweetPred[i] = -1
	}
	// Per-user soft memberships accumulated across snapshots with the
	// online decay τ, weighted by how much evidence (tweets) the snapshot
	// carried for the user; the final class is the argmax of the
	// aggregate (Observation 2: user sentiment is stable, so pooling the
	// stream beats any single day's estimate).
	//
	// Cluster ids are aligned *per snapshot* (majority vote against that
	// snapshot's labeled tweets) before stitching: the lexicon prior
	// keeps columns mostly class-aligned, but a skewed day can flip a
	// column, and a single global mapping would then mis-score every
	// other day — the paper likewise evaluates each timestamp separately
	// (Figures 11b/12b).
	userAcc := make([][]float64, m)
	for _, st := range steps {
		clusters := st.Result.TweetClusters()
		truth := make([]int, len(st.Snapshot.TweetIdx))
		for local, g := range st.Snapshot.TweetIdx {
			truth[local] = s.Dataset.Corpus.Tweets[g].Label
		}
		colClass := snapshotColumnMapping(clusters, truth, cfg.K)
		tweetsOf := make(map[int]int, len(st.Snapshot.Active))
		for local, g := range st.Snapshot.TweetIdx {
			tweetPred[g] = colClass[clusters[local]]
			tweetsOf[s.Dataset.Corpus.Tweets[g].User]++
		}
		su := st.Result.Su.Clone()
		su.NormalizeRowsL1()
		for local, g := range st.Snapshot.Active {
			if userAcc[g] == nil {
				userAcc[g] = make([]float64, cfg.K)
			}
			w := float64(1 + tweetsOf[g])
			// Decay older evidence so evolving users track their
			// latest stance; route each column through the snapshot's
			// class alignment.
			for q := range su.Row(local) {
				cls := colClass[q]
				userAcc[g][cls] *= cfg.Tau
				userAcc[g][cls] += w * su.At(local, q)
			}
		}
	}
	userPred = make([]int, m)
	for g := range userPred {
		userPred[g] = -1
		if userAcc[g] == nil {
			continue
		}
		best, bestV := -1, 0.0
		for q, v := range userAcc[g] {
			if v > bestV {
				best, bestV = q, v
			}
		}
		userPred[g] = best
	}
	return tweetPred, userPred, nil
}

// snapshotColumnMapping maps every cluster column to a class: clusters
// with labeled members take their majority class, the rest keep their own
// index (the lexicon-aligned default).
func snapshotColumnMapping(clusters, truth []int, k int) []int {
	out := make([]int, k)
	for c := range out {
		out[c] = c
	}
	for c, cls := range eval.MajorityMapping(clusters, truth) {
		if c >= 0 && c < k && cls >= 0 && cls < k {
			out[c] = cls
		}
	}
	return out
}

// RenderComparison prints Table 4/5-style output for one or two topics.
func RenderComparison(w io.Writer, title string, results []*ComparisonResult) {
	fmt.Fprintln(w, title)
	header := []string{"Group", "Method"}
	for _, r := range results {
		header = append(header, fmt.Sprintf("Acc %s", r.Prop), fmt.Sprintf("NMI %s", r.Prop))
	}
	rows := [][]string{header}
	if len(results) == 0 {
		return
	}
	for i := range results[0].Scores {
		row := []string{results[0].Scores[i].Group, results[0].Scores[i].Method}
		for _, r := range results {
			sc := r.Scores[i]
			row = append(row, fmtPct(sc.Accuracy))
			if sc.HasNMI {
				row = append(row, fmtPct(sc.NMI))
			} else {
				row = append(row, "–")
			}
		}
		rows = append(rows, row)
	}
	Table(w, rows)
}

// Score looks up a method's score in a comparison result.
func (r *ComparisonResult) Score(method string) (MethodScore, bool) {
	for _, sc := range r.Scores {
		if sc.Method == method {
			return sc, true
		}
	}
	return MethodScore{}, false
}
