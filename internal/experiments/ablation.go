package experiments

import (
	"fmt"
	"io"

	"triclust/internal/core"
	"triclust/internal/eval"
	"triclust/internal/sparse"
)

// AblationRow is one variant's metrics.
type AblationRow struct {
	Variant     string
	Tweet, User eval.Metrics
}

// Ablation measures how much each component of the objective (Eq. 1)
// contributes by knocking them out one at a time:
//
//   - full: the complete tri-clustering objective;
//   - no-lexicon (α=0): drops the emotion-consistency prior;
//   - no-graph (β=0): drops the user-graph Laplacian;
//   - no-Xr: drops the user–tweet coupling term;
//   - no-Xu: drops the user–feature term (users are then positioned only
//     by Xr);
//   - tweets-only: Xp alone — the ESSA reduction.
//
// This is the design-choice evidence DESIGN.md calls out: the paper argues
// each coupling matters (§3, §5.1); the ablation quantifies it on the
// synthetic corpus.
func Ablation(s *Setup, maxIter int) ([]AblationRow, error) {
	tweetTruth := s.Dataset.Corpus.TweetLabels()
	userTruth := s.Dataset.Corpus.UserLabels()
	base := s.Problem(3)

	run := func(name string, p *core.Problem, mutate func(*core.Config)) (AblationRow, error) {
		cfg := core.DefaultConfig()
		cfg.MaxIter = maxIter
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := core.FitOffline(p, cfg)
		if err != nil {
			return AblationRow{}, err
		}
		row := AblationRow{Variant: name}
		if p.Xp.Rows() == s.Dataset.Corpus.NumTweets() {
			row.Tweet = eval.Evaluate(res.TweetClusters(), tweetTruth)
		}
		if p.Xu.Rows() == s.Dataset.Corpus.NumUsers() {
			row.User = eval.Evaluate(res.UserClusters(), userTruth)
		}
		return row, nil
	}

	var out []AblationRow
	add := func(r AblationRow, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}

	if err := add(run("full", base, nil)); err != nil {
		return nil, err
	}
	if err := add(run("no-lexicon (α=0)", base, func(c *core.Config) { c.Alpha = 0 })); err != nil {
		return nil, err
	}
	if err := add(run("no-graph (β=0)", base, func(c *core.Config) { c.Beta = 0 })); err != nil {
		return nil, err
	}
	// Problems carry lazily derived caches (transposes), so knockouts build
	// fresh Problem values instead of copying base.
	noXr := &core.Problem{Xp: base.Xp, Xu: base.Xu, Gu: base.Gu, Sf0: base.Sf0,
		Xr: sparse.Zeros(base.Xr.Rows(), base.Xr.Cols())}
	if err := add(run("no-Xr coupling", noXr, nil)); err != nil {
		return nil, err
	}
	noXu := &core.Problem{Xp: base.Xp, Xr: base.Xr, Gu: base.Gu, Sf0: base.Sf0,
		Xu: sparse.Zeros(base.Xu.Rows(), base.Xu.Cols())}
	if err := add(run("no-Xu term", noXu, nil)); err != nil {
		return nil, err
	}
	essaLike := &core.Problem{
		Xp:  base.Xp,
		Xu:  sparse.Zeros(0, base.Xp.Cols()),
		Xr:  sparse.Zeros(0, base.Xp.Rows()),
		Sf0: base.Sf0,
	}
	if err := add(run("tweets-only (ESSA reduction)", essaLike, func(c *core.Config) { c.Beta = 0 })); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderAblation prints the knockout table.
func RenderAblation(w io.Writer, prop Prop, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation (%s): component knockouts of Eq. 1\n", prop)
	table := [][]string{{"variant", "tweet acc", "tweet NMI", "user acc", "user NMI"}}
	for _, r := range rows {
		cell := func(v float64) string {
			if v == 0 {
				return "–"
			}
			return fmtPct(v)
		}
		table = append(table, []string{r.Variant,
			cell(r.Tweet.Accuracy), cell(r.Tweet.NMI),
			cell(r.User.Accuracy), cell(r.User.NMI)})
	}
	Table(w, table)
}
