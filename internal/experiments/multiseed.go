package experiments

import (
	"fmt"
	"io"
	"math"

	"triclust/internal/baseline"
	"triclust/internal/core"
	"triclust/internal/eval"
	"triclust/internal/synth"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// SeedStats summarizes one method's metric across corpus seeds.
type SeedStats struct {
	Method    string
	Mean, Std float64
	PerSeed   []float64
}

// MultiSeedResult collects the robustness study.
type MultiSeedResult struct {
	Prop  Prop
	Seeds []int64
	// TweetAcc / UserAcc per method.
	TweetAcc []SeedStats
	UserAcc  []SeedStats
}

// MultiSeed re-generates the topic corpus under several seeds and re-runs
// the unsupervised methods, reporting mean ± std of accuracy — the
// robustness check a single-corpus table cannot give. quick reduces the
// iteration budget.
func MultiSeed(p Prop, scale int, seeds []int64, quick bool) (*MultiSeedResult, error) {
	out := &MultiSeedResult{Prop: p, Seeds: seeds}
	tweetSeries := map[string][]float64{}
	userSeries := map[string][]float64{}
	methods := []string{"ESSA", "Tri-clustering", "KMeans", "BACG"}

	for _, seed := range seeds {
		var cfg synth.Config
		switch p {
		case Prop30:
			cfg = synth.Prop30Config()
		case Prop37:
			cfg = synth.Prop37Config()
		default:
			return nil, fmt.Errorf("experiments: unknown prop %d", p)
		}
		cfg = synth.Scaled(cfg, scale)
		cfg.Seed = seed
		d, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		g := tgraph.Build(d.Corpus, tgraph.BuildOptions{Weighting: text.TFIDF, MinDF: 2})
		lex := d.PlantedLexicon(0.4, 0.05, seed)
		s := &Setup{Prop: p, Dataset: d, Graph: g, Lexicon: lex}

		iters := 100
		if quick {
			iters = 30
		}
		tweetTruth := d.Corpus.TweetLabels()
		userTruth := d.Corpus.UserLabels()

		essaOpts := baseline.DefaultESSAOptions()
		essaOpts.MaxIter = iters
		essaPred, _, err := baseline.ESSA(g.Xp, lex.Sf0(g.Vocab, 3, 0.8), 3, essaOpts)
		if err != nil {
			return nil, err
		}
		tweetSeries["ESSA"] = append(tweetSeries["ESSA"], eval.Accuracy(essaPred, tweetTruth))

		triCfg := core.DefaultConfig()
		triCfg.MaxIter = iters
		tri, err := core.FitOffline(s.Problem(3), triCfg)
		if err != nil {
			return nil, err
		}
		tweetSeries["Tri-clustering"] = append(tweetSeries["Tri-clustering"],
			eval.Accuracy(tri.TweetClusters(), tweetTruth))
		userSeries["Tri-clustering"] = append(userSeries["Tri-clustering"],
			eval.Accuracy(tri.UserClusters(), userTruth))

		km := baseline.KMeans(g.Xp, 3, baseline.DefaultKMeansOptions())
		tweetSeries["KMeans"] = append(tweetSeries["KMeans"], eval.Accuracy(km, tweetTruth))

		bacgOpts := baseline.DefaultBACGOptions()
		bacgOpts.MaxIter = iters
		bacgPred, _, err := baseline.BACG(g.Xu, g.Gu, 3, bacgOpts)
		if err != nil {
			return nil, err
		}
		userSeries["BACG"] = append(userSeries["BACG"], eval.Accuracy(bacgPred, userTruth))
	}

	for _, m := range methods {
		if vals, ok := tweetSeries[m]; ok {
			out.TweetAcc = append(out.TweetAcc, statsOf(m, vals))
		}
		if vals, ok := userSeries[m]; ok {
			out.UserAcc = append(out.UserAcc, statsOf(m, vals))
		}
	}
	return out, nil
}

func statsOf(method string, vals []float64) SeedStats {
	s := SeedStats{Method: method, PerSeed: vals}
	if len(vals) == 0 {
		return s
	}
	for _, v := range vals {
		s.Mean += v
	}
	s.Mean /= float64(len(vals))
	for _, v := range vals {
		d := v - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(vals)))
	return s
}

// RenderMultiSeed prints the robustness table.
func RenderMultiSeed(w io.Writer, r *MultiSeedResult) {
	fmt.Fprintf(w, "Multi-seed robustness (%s, %d seeds): accuracy mean ± std\n", r.Prop, len(r.Seeds))
	rows := [][]string{{"level", "method", "mean", "std"}}
	for _, s := range r.TweetAcc {
		rows = append(rows, []string{"tweet", s.Method, fmtPct(s.Mean), fmtPct(s.Std)})
	}
	for _, s := range r.UserAcc {
		rows = append(rows, []string{"user", s.Method, fmtPct(s.Mean), fmtPct(s.Std)})
	}
	Table(w, rows)
}
