package experiments

import (
	"bytes"
	"strings"
	"testing"

	"triclust/internal/core"
)

// testSetup caches one scaled setup per topic across tests.
var setupCache = map[Prop]*Setup{}

func getSetup(t testing.TB, p Prop) *Setup {
	t.Helper()
	if s, ok := setupCache[p]; ok {
		return s
	}
	s, err := NewSetup(p, 8)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	setupCache[p] = s
	return s
}

func TestTable2TopWordsShape(t *testing.T) {
	s := getSetup(t, Prop37)
	r := Table2TopWords(s, 8)
	if len(r.Pos) != 8 || len(r.Neg) != 8 {
		t.Fatalf("top lists %d/%d, want 8/8", len(r.Pos), len(r.Neg))
	}
	// Counts are sorted non-increasing.
	for i := 1; i < len(r.Pos); i++ {
		if r.Pos[i].Count > r.Pos[i-1].Count {
			t.Fatal("pos counts not sorted")
		}
	}
	// The planted seed hashtags dominate, as in the paper's Table 2.
	if r.Pos[0].Word == "" || r.Pos[0].Count == 0 {
		t.Fatal("empty top word")
	}
	var buf bytes.Buffer
	RenderTable2(&buf, r)
	if !strings.Contains(buf.String(), "Pos") {
		t.Fatal("render missing Pos row")
	}
}

func TestTable3StatsShape(t *testing.T) {
	s30 := getSetup(t, Prop30)
	s37 := getSetup(t, Prop37)
	r30, r37 := Table3Stats(s30), Table3Stats(s37)
	if r30.TweetPos == 0 || r30.TweetNeg == 0 {
		t.Fatalf("Prop30 tweet counts empty: %+v", r30)
	}
	// Prop 37 is heavily pos-skewed; Prop 30 is milder (Table 3).
	skew37 := float64(r37.TweetPos) / float64(r37.TweetPos+r37.TweetNeg)
	skew30 := float64(r30.TweetPos) / float64(r30.TweetPos+r30.TweetNeg)
	if skew37 <= skew30 {
		t.Fatalf("skew ordering lost: prop37 %.2f vs prop30 %.2f", skew37, skew30)
	}
	if r30.UserUnlabeled == 0 || r37.UserUnlabeled == 0 {
		t.Fatal("expected unlabeled users")
	}
	var buf bytes.Buffer
	RenderTable3(&buf, []Table3Row{r30, r37})
	if !strings.Contains(buf.String(), "unlabeled") {
		t.Fatal("render missing header")
	}
}

func TestFigure4FeatureEvolution(t *testing.T) {
	s := getSetup(t, Prop30)
	r := Figure4FeatureEvolution(s)
	if r.User < 0 {
		t.Fatal("no user selected")
	}
	if len(r.FreqA) == 0 || len(r.FreqB) == 0 {
		t.Skip("selected user inactive in one period")
	}
	// Observation 1: distributions differ between periods.
	if r.Divergence <= 0.05 {
		t.Fatalf("feature distributions suspiciously identical: TV=%.3f", r.Divergence)
	}
	var buf bytes.Buffer
	RenderFigure4(&buf, r)
	if !strings.Contains(buf.String(), "early") {
		t.Fatal("render missing period")
	}
}

func TestFigure6and7SweepShape(t *testing.T) {
	s := getSetup(t, Prop30)
	alphas := []float64{0, 0.5, 1}
	betas := []float64{0, 0.8}
	r, err := Figure6and7ParamSweep(s, alphas, betas, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(alphas)*len(betas) {
		t.Fatalf("grid size %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.User.Accuracy < 0.2 || c.Tweet.Accuracy < 0.2 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	// Paper: tweet-level is much less parameter-sensitive than
	// user-level (§5.1: tweet acc varies ~1 point, user acc ~12 points).
	spread := func(f func(SweepCell) float64) float64 {
		lo, hi := 1.0, 0.0
		for _, c := range r.Cells {
			v := f(c)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	tweetSpread := spread(func(c SweepCell) float64 { return c.Tweet.Accuracy })
	userSpread := spread(func(c SweepCell) float64 { return c.User.Accuracy })
	if tweetSpread > userSpread+0.05 {
		t.Fatalf("tweet sensitivity (%.3f) should not exceed user sensitivity (%.3f)",
			tweetSpread, userSpread)
	}
	var buf bytes.Buffer
	RenderSweep(&buf, r, alphas, betas)
	if !strings.Contains(buf.String(), "Figure 6a") {
		t.Fatal("render missing grids")
	}
}

func TestFigure8ConvergenceShape(t *testing.T) {
	s := getSetup(t, Prop30)
	r, err := Figure8Convergence(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations != 30 || len(r.Total) != 30 {
		t.Fatalf("iterations %d, history %d", r.Iterations, len(r.Total))
	}
	// Total objective settles: the last value is below the first and the
	// tail is nearly flat (paper: converges around iteration 10).
	if r.Total[len(r.Total)-1] >= r.Total[0] {
		t.Fatal("total loss did not decrease")
	}
	tailDelta := r.Total[20] - r.Total[29]
	headDelta := r.Total[0] - r.Total[9]
	if tailDelta < 0 {
		tailDelta = -tailDelta
	}
	if tailDelta > headDelta && headDelta > 0 {
		t.Fatalf("loss not settling: head Δ=%.3f tail Δ=%.3f", headDelta, tailDelta)
	}
	var buf bytes.Buffer
	RenderFigure8(&buf, r)
	if !strings.Contains(buf.String(), "total") {
		t.Fatal("render missing series")
	}
}

func TestTable4TweetLevelShape(t *testing.T) {
	s := getSetup(t, Prop30)
	r, err := Table4TweetLevel(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scores) != 8 {
		t.Fatalf("%d methods, want 8", len(r.Scores))
	}
	tri, _ := r.Score("Tri-clustering")
	essa, _ := r.Score("ESSA")
	svm, _ := r.Score("SVM")
	lp5, _ := r.Score("LP-5")
	online, _ := r.Score("Online tri-clustering")

	// Paper shapes: tri-clustering beats ESSA on accuracy and NMI;
	// supervised SVM beats the unsupervised methods; tri-clustering
	// beats LP-5; online ≥ offline.
	if tri.Accuracy < essa.Accuracy-0.02 {
		t.Fatalf("tri (%.3f) worse than ESSA (%.3f)", tri.Accuracy, essa.Accuracy)
	}
	if tri.NMI < essa.NMI-0.02 {
		t.Fatalf("tri NMI (%.3f) worse than ESSA (%.3f)", tri.NMI, essa.NMI)
	}
	if svm.Accuracy < tri.Accuracy-0.05 {
		t.Fatalf("SVM (%.3f) should be competitive with tri (%.3f)", svm.Accuracy, tri.Accuracy)
	}
	if tri.Accuracy < lp5.Accuracy-0.02 {
		t.Fatalf("tri (%.3f) worse than LP-5 (%.3f)", tri.Accuracy, lp5.Accuracy)
	}
	// At this test scale each daily snapshot is tiny, so the online
	// algorithm loses some of its paper-scale advantage; require it to
	// stay within 10 points of offline (at larger scales it matches or
	// beats it — see EXPERIMENTS.md).
	if online.Accuracy < tri.Accuracy-0.10 {
		t.Fatalf("online (%.3f) clearly worse than offline (%.3f)", online.Accuracy, tri.Accuracy)
	}
	var buf bytes.Buffer
	RenderComparison(&buf, "Table 4", []*ComparisonResult{r})
	if !strings.Contains(buf.String(), "Tri-clustering") {
		t.Fatal("render missing method")
	}
}

func TestTable5UserLevelShape(t *testing.T) {
	s := getSetup(t, Prop30)
	r, err := Table5UserLevel(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scores) != 8 {
		t.Fatalf("%d methods, want 8", len(r.Scores))
	}
	tri, _ := r.Score("Tri-clustering")
	bacg, _ := r.Score("BACG")
	online, _ := r.Score("Online tri-clustering")
	// Paper: tri-clustering significantly beats BACG; online ≥ offline.
	if tri.Accuracy < bacg.Accuracy-0.02 {
		t.Fatalf("tri (%.3f) worse than BACG (%.3f)", tri.Accuracy, bacg.Accuracy)
	}
	if online.Accuracy < tri.Accuracy-0.10 {
		t.Fatalf("online (%.3f) collapsed vs offline (%.3f)", online.Accuracy, tri.Accuracy)
	}
}

func TestFigure9and10OnlineSweeps(t *testing.T) {
	s := getSetup(t, Prop30)
	cells, err := Figure9OnlineAlphaTau(s, []float64{0, 0.9}, []float64{0.5, 0.9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("grid %d", len(cells))
	}
	for _, c := range cells {
		if c.Tweet <= 0.3 || c.User <= 0.3 {
			t.Fatalf("degenerate online cell %+v", c)
		}
	}
	g, err := Figure10Gamma(s, []float64{0, 0.2, 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 3 {
		t.Fatalf("gamma sweep %d", len(g))
	}
	// Paper: γ affects user level, leaves tweet level nearly unchanged.
	tweetSpread := g[0].Tweet - g[2].Tweet
	if tweetSpread < 0 {
		tweetSpread = -tweetSpread
	}
	if tweetSpread > 0.15 {
		t.Fatalf("γ moved tweet accuracy by %.3f", tweetSpread)
	}
	var buf bytes.Buffer
	RenderOnlineSweep(&buf, "Figure 9", cells, false)
	RenderOnlineSweep(&buf, "Figure 10", g, true)
	if !strings.Contains(buf.String(), "γ") {
		t.Fatal("render missing gamma column")
	}
}

func TestFigure11TimelineShape(t *testing.T) {
	s := getSetup(t, Prop30)
	cfg := core.DefaultOnlineConfig()
	cfg.Window = 4 // harness window: thin synthetic days (see tables.go)
	cfg.MaxIter = 20
	r, err := Figure11and12Online(s, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Online) == 0 || len(r.Mini) == 0 || len(r.Full) == 0 {
		t.Fatal("empty driver series")
	}
	sum := r.Summarize()
	// Paper shapes: online much cheaper than full-batch; online accuracy
	// ≈ full-batch and ≥ mini-batch on users.
	if sum.OnlineTime > sum.FullTime {
		t.Fatalf("online (%v) slower than full-batch (%v)", sum.OnlineTime, sum.FullTime)
	}
	if sum.OnlineUserAcc < sum.MiniUserAcc-0.05 {
		t.Fatalf("online user acc (%.3f) clearly below mini-batch (%.3f)",
			sum.OnlineUserAcc, sum.MiniUserAcc)
	}
	var buf bytes.Buffer
	RenderTimeline(&buf, r)
	if !strings.Contains(buf.String(), "totals:") {
		t.Fatal("render missing totals")
	}
}

func TestSetupUnknownProp(t *testing.T) {
	if _, err := NewSetup(Prop(99), 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestTableRenderer(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, [][]string{{"a", "bb"}, {"ccc", "d"}})
	out := buf.String()
	if !strings.Contains(out, "a    bb") && !strings.Contains(out, "a   bb") {
		t.Fatalf("alignment wrong:\n%s", out)
	}
	Table(&buf, nil) // must not panic
}

func TestAblationShape(t *testing.T) {
	s := getSetup(t, Prop30)
	rows, err := Ablation(s, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d variants, want 6", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["full"]
	if full.Tweet.Accuracy < 0.5 || full.User.Accuracy < 0.5 {
		t.Fatalf("full model degenerate: %+v", full)
	}
	// The ESSA reduction has no user output.
	if byName["tweets-only (ESSA reduction)"].User.Accuracy != 0 {
		t.Fatal("tweets-only variant should have no user metrics")
	}
	// Dropping the Xr coupling should not *help* user-level accuracy
	// (it is the only tie between users and tweet clusters).
	if byName["no-Xr coupling"].User.Accuracy > full.User.Accuracy+0.10 {
		t.Fatalf("removing Xr helped users substantially: %.3f vs %.3f",
			byName["no-Xr coupling"].User.Accuracy, full.User.Accuracy)
	}
	var buf bytes.Buffer
	RenderAblation(&buf, Prop30, rows)
	if !strings.Contains(buf.String(), "full") {
		t.Fatal("render missing variant")
	}
}

func TestMultiSeedRobustness(t *testing.T) {
	r, err := MultiSeed(Prop30, 10, []int64{1, 2, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TweetAcc) == 0 || len(r.UserAcc) == 0 {
		t.Fatal("empty stats")
	}
	find := func(list []SeedStats, m string) SeedStats {
		for _, s := range list {
			if s.Method == m {
				return s
			}
		}
		t.Fatalf("method %s missing", m)
		return SeedStats{}
	}
	tri := find(r.TweetAcc, "Tri-clustering")
	if len(tri.PerSeed) != 3 {
		t.Fatalf("per-seed count %d", len(tri.PerSeed))
	}
	if tri.Mean < 0.5 || tri.Mean > 1 {
		t.Fatalf("tri mean %.3f", tri.Mean)
	}
	if tri.Std < 0 || tri.Std > 0.3 {
		t.Fatalf("tri std %.3f unreasonable", tri.Std)
	}
	km := find(r.TweetAcc, "KMeans")
	// Tri-clustering should not lose badly to plain k-means on average.
	if tri.Mean < km.Mean-0.05 {
		t.Fatalf("tri (%.3f) well below kmeans (%.3f)", tri.Mean, km.Mean)
	}
	var buf bytes.Buffer
	RenderMultiSeed(&buf, r)
	if !strings.Contains(buf.String(), "Tri-clustering") {
		t.Fatal("render missing method")
	}
}
