package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// ProbeFunc checks one peer's liveness (triclustd probes GET /v1/healthz).
// A nil error is a successful probe; ctx carries the per-probe timeout.
type ProbeFunc func(ctx context.Context, peer string) error

// DetectorConfig tunes the failure detector's probe loop.
type DetectorConfig struct {
	// Interval between probes of a live peer.
	Interval time.Duration
	// Timeout bounds each individual probe.
	Timeout time.Duration
	// Threshold is the number of consecutive probe failures after which a
	// peer is declared down. One failed probe is routine (a GC pause, a
	// dropped packet); Threshold of them in a row is a dead or partitioned
	// peer.
	Threshold int
	// Backoff spaces out probes of a peer already declared down, so a
	// long-dead peer is not hammered at the live-probe cadence.
	Backoff Backoff
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	return c
}

// Detector is a per-shard failure detector: one probe loop per peer, a
// consecutive-failure threshold, and capped-backoff re-probing of down
// peers until they answer again. It holds the shard's local view of which
// peers are alive — there is no gossip; every shard probes every peer, so
// views converge within a probe interval of the truth without any shared
// state.
type Detector struct {
	cfg   DetectorConfig
	probe ProbeFunc
	// onChange (optional) is called outside the detector's locks whenever
	// a peer transitions up↔down, from the peer's probe goroutine.
	onChange func(peer string, down bool)

	mu    sync.Mutex
	state map[string]*peerProbe

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type peerProbe struct {
	fails int
	down  bool
}

// NewDetector builds (but does not start) a detector over peers. The
// probe function is called concurrently from one goroutine per peer.
func NewDetector(peers []string, probe ProbeFunc, cfg DetectorConfig, onChange func(peer string, down bool)) *Detector {
	d := &Detector{
		cfg:      cfg.withDefaults(),
		probe:    probe,
		onChange: onChange,
		state:    make(map[string]*peerProbe, len(peers)),
		stop:     make(chan struct{}),
	}
	for _, p := range peers {
		d.state[p] = &peerProbe{}
	}
	return d
}

// Start launches the probe loops. Stop must be called to release them.
func (d *Detector) Start() {
	d.mu.Lock()
	peers := make([]string, 0, len(d.state))
	for p := range d.state {
		peers = append(peers, p)
	}
	d.mu.Unlock()
	for _, p := range peers {
		d.wg.Add(1)
		go d.probeLoop(p)
	}
}

// Stop terminates the probe loops and waits for them to exit.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

func (d *Detector) probeLoop(peer string) {
	defer d.wg.Done()
	timer := time.NewTimer(d.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Timeout)
		err := d.probe(ctx, peer)
		cancel()
		changed, down, downFor := d.record(peer, err == nil)
		if changed && d.onChange != nil {
			d.onChange(peer, down)
		}
		// Live peers are probed at the steady interval; down peers back
		// off (capped), so a long outage costs a trickle of probes.
		next := d.cfg.Interval
		if down {
			next = d.cfg.Backoff.Delay(downFor)
			if next < d.cfg.Interval {
				next = d.cfg.Interval
			}
		}
		timer.Reset(next)
	}
}

// record folds one probe result into the peer's state, reporting whether
// the up/down verdict changed, the new verdict, and for how many probes
// beyond the threshold the peer has been down (the backoff exponent).
func (d *Detector) record(peer string, ok bool) (changed, down bool, downFor int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state[peer]
	if st == nil {
		return false, false, 0
	}
	if ok {
		changed = st.down
		st.down = false
		st.fails = 0
		return changed, false, 0
	}
	st.fails++
	if !st.down && st.fails >= d.cfg.Threshold {
		st.down = true
		changed = true
	}
	return changed, st.down, st.fails - d.cfg.Threshold
}

// Down reports this shard's current verdict on peer. Unknown peers are
// reported up — the detector never blocks traffic to a peer it was not
// configured to watch.
func (d *Detector) Down(peer string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state[peer]
	return st != nil && st.down
}

// DownPeers returns the sorted list of peers currently declared down.
func (d *Detector) DownPeers() []string {
	d.mu.Lock()
	var out []string
	for p, st := range d.state {
		if st.down {
			out = append(out, p)
		}
	}
	d.mu.Unlock()
	sort.Strings(out)
	return out
}

// FirstLive returns the first peer in order that is not declared down.
func (d *Detector) FirstLive(peers []string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range peers {
		if st := d.state[p]; st == nil || !st.down {
			return p, true
		}
	}
	return "", false
}

// MarkDown forces a peer's verdict (used by tests and by callers that
// learn of a death out-of-band, e.g. a connection refused on a ship).
func (d *Detector) MarkDown(peer string) {
	d.mu.Lock()
	st := d.state[peer]
	var changed bool
	if st != nil && !st.down {
		st.down = true
		st.fails = d.cfg.Threshold
		changed = true
	}
	d.mu.Unlock()
	if changed && d.onChange != nil {
		d.onChange(peer, true)
	}
}
