package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testRing(t *testing.T, peers ...string) *Ring {
	t.Helper()
	r, err := New(peers, 64)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestReplicaSetDistinctAndOwnerFirst(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d"}
	r := testRing(t, peers...)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("topic-%03d", i)
		for n := 1; n <= len(peers)+2; n++ {
			set := r.ReplicaSet(key, n)
			want := n
			if want > len(peers) {
				want = len(peers)
			}
			if len(set) != want {
				t.Fatalf("ReplicaSet(%q, %d) has %d peers, want %d", key, n, len(set), want)
			}
			if set[0] != r.Owner(key) {
				t.Fatalf("ReplicaSet(%q)[0] = %s, Owner = %s", key, set[0], r.Owner(key))
			}
			seen := make(map[string]bool)
			for _, p := range set {
				if seen[p] {
					t.Fatalf("ReplicaSet(%q, %d) repeats %s: %v", key, n, p, set)
				}
				seen[p] = true
			}
		}
	}
}

func TestReplicaSetDeterministicAcrossPeerOrder(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	r1 := testRing(t, peers...)
	shuffled := []string{"http://d", "http://b", "http://e", "http://a", "http://c"}
	r2 := testRing(t, shuffled...)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if a, b := r1.ReplicaSet(key, 3), r2.ReplicaSet(key, 3); !reflect.DeepEqual(a, b) {
			t.Fatalf("ReplicaSet(%q) differs across peer order: %v vs %v", key, a, b)
		}
	}
}

func TestSuccessorsExcludeOwner(t *testing.T) {
	r := testRing(t, "http://a", "http://b", "http://c")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		succ := r.Successors(key, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%q, 2) = %v", key, succ)
		}
		owner := r.Owner(key)
		for _, p := range succ {
			if p == owner {
				t.Fatalf("Successors(%q) contains the owner %s", key, owner)
			}
		}
	}
	single := testRing(t, "http://only")
	if succ := single.Successors("k", 2); len(succ) != 0 {
		t.Fatalf("one-peer ring has successors: %v", succ)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	prevCap := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		cap := b.Base
		for i := 0; i < attempt && cap < b.Max; i++ {
			cap *= 2
		}
		if cap > b.Max {
			cap = b.Max
		}
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(attempt)
			if d < cap/2 || d > cap {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, d, cap/2, cap)
			}
		}
		if cap < prevCap {
			t.Fatalf("backoff cap shrank: %v after %v", cap, prevCap)
		}
		prevCap = cap
	}
	// The zero value falls back to the default schedule instead of
	// busy-looping with zero delays.
	var zero Backoff
	if d := zero.Delay(0); d <= 0 {
		t.Fatalf("zero-value Delay(0) = %v, want > 0", d)
	}
}

func TestDetectorThresholdAndRecovery(t *testing.T) {
	var failing atomic.Bool
	var mu sync.Mutex
	events := []string{}
	probe := func(ctx context.Context, peer string) error {
		if failing.Load() {
			return errors.New("down")
		}
		return nil
	}
	d := NewDetector([]string{"http://p"}, probe, DetectorConfig{
		Interval:  5 * time.Millisecond,
		Timeout:   5 * time.Millisecond,
		Threshold: 3,
		Backoff:   Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	}, func(peer string, down bool) {
		mu.Lock()
		events = append(events, fmt.Sprintf("%s down=%v", peer, down))
		mu.Unlock()
	})
	d.Start()
	defer d.Stop()

	deadline := time.Now().Add(2 * time.Second)
	if d.Down("http://p") {
		t.Fatal("peer down before any probe failed")
	}
	failing.Store(true)
	for !d.Down("http://p") {
		if time.Now().After(deadline) {
			t.Fatal("peer never declared down")
		}
		time.Sleep(time.Millisecond)
	}
	if got := d.DownPeers(); len(got) != 1 || got[0] != "http://p" {
		t.Fatalf("DownPeers = %v", got)
	}
	failing.Store(false)
	for d.Down("http://p") {
		if time.Now().After(deadline) {
			t.Fatal("peer never recovered")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) < 2 || events[0] != "http://p down=true" || events[1] != "http://p down=false" {
		t.Fatalf("onChange events = %v", events)
	}
}

func TestDetectorSingleFailureIsNotDown(t *testing.T) {
	var calls atomic.Int64
	probe := func(ctx context.Context, peer string) error {
		if calls.Add(1) == 1 {
			return errors.New("one blip")
		}
		return nil
	}
	d := NewDetector([]string{"http://p"}, probe, DetectorConfig{
		Interval: 2 * time.Millisecond, Threshold: 3,
	}, nil)
	d.Start()
	defer d.Stop()
	deadline := time.Now().Add(time.Second)
	for calls.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("probes never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if d.Down("http://p") {
		t.Fatal("a single failed probe declared the peer down")
	}
}

func TestDetectorFirstLive(t *testing.T) {
	d := NewDetector([]string{"http://a", "http://b"}, func(context.Context, string) error { return nil },
		DetectorConfig{}, nil)
	d.MarkDown("http://a")
	if p, ok := d.FirstLive([]string{"http://a", "http://b"}); !ok || p != "http://b" {
		t.Fatalf("FirstLive = %q, %v", p, ok)
	}
	// Unwatched peers (e.g. self) count as live.
	if p, ok := d.FirstLive([]string{"http://self", "http://b"}); !ok || p != "http://self" {
		t.Fatalf("FirstLive with unwatched = %q, %v", p, ok)
	}
	d.MarkDown("http://b")
	if _, ok := d.FirstLive([]string{"http://a", "http://b"}); ok {
		t.Fatal("FirstLive found a live peer among all-down")
	}
}

func TestPlanRebalance(t *testing.T) {
	r := testRing(t, "http://a", "http://b", "http://c")
	var held, wantMoved []string
	for i := 0; i < 60; i++ {
		held = append(held, fmt.Sprintf("k%d", i))
	}
	for _, k := range held {
		if r.Owner(k) != "http://a" {
			wantMoved = append(wantMoved, k)
		}
	}
	sort.Strings(wantMoved)
	plan := PlanRebalance(r, "http://a", held, nil)
	var got []string
	for _, mv := range plan {
		if mv.To != r.Owner(mv.Topic) {
			t.Fatalf("move %v does not target the ring owner %s", mv, r.Owner(mv.Topic))
		}
		got = append(got, mv.Topic)
	}
	if !reflect.DeepEqual(got, wantMoved) {
		t.Fatalf("plan moves %v, want %v", got, wantMoved)
	}
	// Dead owners are skipped; their topics stay put until they answer.
	deadOwner := plan[0].To
	filtered := PlanRebalance(r, "http://a", held, func(p string) bool { return p != deadOwner })
	for _, mv := range filtered {
		if mv.To == deadOwner {
			t.Fatalf("plan moves %q onto the dead peer %s", mv.Topic, deadOwner)
		}
	}
	if len(filtered) >= len(plan) {
		t.Fatalf("filtering a dead owner did not shrink the plan (%d vs %d)", len(filtered), len(plan))
	}
}

// Satellite: LoadTombstones against damaged markers — corrupt JSON,
// truncated files, wrong shapes. Every damaged marker is skipped with a
// warning (counted, not fatal), and intact markers still load.
func TestLoadTombstonesDamagedMarkers(t *testing.T) {
	dir := t.TempDir()
	if err := WriteTombstone(nil, dir, "good", Tombstone{Epoch: 3, Target: "http://b"}); err != nil {
		t.Fatalf("WriteTombstone: %v", err)
	}
	damaged := map[string]string{
		"corrupt.moved":   "{not json at all",
		"truncated.moved": `{"epoch": 7, "targ`,
		"empty.moved":     "",
		"notarget.moved":  `{"epoch": 2, "target": ""}`,
	}
	for name, content := range damaged {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	var warnings []string
	tombs, err := LoadTombstones(dir, func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("LoadTombstones: %v", err)
	}
	if len(tombs) != 1 {
		t.Fatalf("loaded %d tombstones (%v), want only the intact one", len(tombs), tombs)
	}
	if ts := tombs["good"]; ts.Epoch != 3 || ts.Target != "http://b" {
		t.Fatalf("good tombstone = %+v", ts)
	}
	if len(warnings) != len(damaged) {
		t.Fatalf("%d warnings for %d damaged markers: %v", len(warnings), len(damaged), warnings)
	}
	for name := range damaged {
		base := strings.TrimSuffix(name, ".moved")
		found := false
		for _, w := range warnings {
			if strings.Contains(w, base) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no warning mentions damaged marker %s: %v", name, warnings)
		}
	}
}

func TestLoadTombstonesMissingDir(t *testing.T) {
	tombs, err := LoadTombstones(filepath.Join(t.TempDir(), "nope"), func(string, ...any) {})
	if err == nil && len(tombs) != 0 {
		t.Fatalf("missing dir produced tombstones: %v", tombs)
	}
}
