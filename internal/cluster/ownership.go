package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"triclust/internal/fault"
)

// Tombstone records that a topic was handed off to another shard at a
// given ownership epoch. The shard that gave the topic up persists one
// next to where the topic's snapshot used to live, so that — across
// restarts — it refuses writes for the topic and redirects clients to the
// recorded target instead of silently re-creating divergent state.
//
// Epoch invariants:
//
//   - A topic is created at epoch 0. Every completed hand-off increments
//     the epoch by exactly one, and the new epoch travels inside the
//     exported snapshot (the codec's epoch section).
//   - A shard holding a tombstone at epoch E accepts a restore of that
//     topic only from a snapshot with epoch > E: the topic may legally
//     come back (another hand-off), but a stale pre-move snapshot — equal
//     or lower epoch — is rejected, because accepting it would fork the
//     topic's history.
//   - A tombstone written before the hand-off's PUT is the fencing point:
//     from that moment the source refuses the topic's writes even if it
//     crashes mid-move, so no interleaving of crash and retry yields two
//     shards accepting writes for one topic.
type Tombstone struct {
	// Epoch is the ownership epoch the topic moved away at (the epoch
	// embedded in the snapshot installed on the target).
	Epoch uint64 `json:"epoch"`
	// Target is the peer the topic was handed to.
	Target string `json:"target"`
}

// tombstoneSuffix is the on-disk marker extension: <topic>.moved next to
// where <topic>.snap lived.
const tombstoneSuffix = ".moved"

// TombstonePath returns the on-disk path of a topic's hand-off marker
// under dir.
func TombstonePath(dir, topic string) string {
	return filepath.Join(dir, topic+tombstoneSuffix)
}

// WriteTombstone atomically persists a hand-off marker (temp file +
// rename, then directory-durable via the caller's dir sync if required).
// All syscalls go through fsys: the tombstone write is the hand-off's
// fencing point, so its crash states are part of the fault matrix.
func WriteTombstone(fsys fault.FS, dir, topic string, ts Tombstone) error {
	if fsys == nil {
		fsys = fault.OS
	}
	data, err := json.Marshal(ts)
	if err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp("tombstone.tmp", dir, topic+tombstoneSuffix+".tmp*")
	if err != nil {
		return err
	}
	defer fsys.Remove("tombstone.cleanup", tmp.Name())
	if _, err := tmp.Write("tombstone.write", data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync("tombstone.sync"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fsys.Rename("tombstone.rename", tmp.Name(), TombstonePath(dir, topic))
}

// ReadTombstone loads a topic's hand-off marker. It returns os.ErrNotExist
// (via the underlying open) when no marker exists.
func ReadTombstone(dir, topic string) (Tombstone, error) {
	data, err := os.ReadFile(TombstonePath(dir, topic))
	if err != nil {
		return Tombstone{}, err
	}
	var ts Tombstone
	if err := json.Unmarshal(data, &ts); err != nil {
		return Tombstone{}, fmt.Errorf("cluster: tombstone %s: %w", topic, err)
	}
	if ts.Target == "" {
		return Tombstone{}, fmt.Errorf("cluster: tombstone %s names no target", topic)
	}
	return ts, nil
}

// RemoveTombstone deletes a topic's hand-off marker; missing is not an
// error.
func RemoveTombstone(fsys fault.FS, dir, topic string) error {
	if fsys == nil {
		fsys = fault.OS
	}
	err := fsys.Remove("tombstone.remove", TombstonePath(dir, topic))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// LoadTombstones scans dir for hand-off markers, returning topic name →
// tombstone. Undecodable markers are reported through warn and skipped —
// like a corrupt snapshot, one bad file must not keep a shard from
// starting.
func LoadTombstones(dir string, warn func(format string, args ...any)) (map[string]Tombstone, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Tombstone)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != tombstoneSuffix {
			continue
		}
		topic := e.Name()[:len(e.Name())-len(tombstoneSuffix)]
		ts, err := ReadTombstone(dir, topic)
		if err != nil {
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		out[topic] = ts
	}
	return out, nil
}
