// Package cluster implements the placement layer of a sharded triclustd
// deployment: a consistent-hash ring assigning topics to shards, and the
// ownership metadata (epochs, hand-off tombstones) that lets a topic move
// between shards without two processes ever accepting writes for it.
//
// The ring is purely deterministic: every shard builds it from the same
// static peer list and virtual-node count, hashes peers and topics with
// the same 64-bit FNV-1a function, and therefore computes the same owner
// for every topic with no coordination traffic. Placement changes only
// when the operator changes the peer list — or explicitly overrides the
// ring with a topic move, which the daemon records as a registry entry on
// the new owner and a tombstone on the old one.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-peer virtual-node count used when the
// operator does not configure one. 64 points per peer keeps the expected
// per-shard load within a few percent of uniform for small clusters
// while the ring stays tiny (a few KB).
const DefaultVirtualNodes = 64

// point is one virtual node: a position on the hash circle owned by a
// peer.
type point struct {
	hash uint64
	peer string
}

// Ring is an immutable consistent-hash ring over a static peer list.
// Construct it once at startup; Owner is safe for concurrent use.
type Ring struct {
	points []point
	peers  []string // sorted, deduplicated
	vnodes int
}

// New builds a ring over peers with vnodes virtual nodes per peer.
// Peers are opaque shard identities (triclustd uses base URLs); the list
// must be non-empty and duplicate-free. vnodes <= 0 selects
// DefaultVirtualNodes. Two rings built from the same (peers, vnodes) —
// in any peer order — place every key identically.
func New(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i, p := range sorted {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if i > 0 && sorted[i-1] == p {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
	}
	r := &Ring{
		points: make([]point, 0, len(sorted)*vnodes),
		peers:  sorted,
		vnodes: vnodes,
	}
	for _, p := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hashKey(p + "#" + strconv.Itoa(i)), peer: p})
		}
	}
	// Sort by position; ties (astronomically rare with a 64-bit hash, but
	// placement must be deterministic even then) break by peer name, so
	// peer-list order never matters.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// hashKey is the ring's hash function: 64-bit FNV-1a followed by a
// murmur3-style avalanche finalizer. Plain FNV leaves too much structure
// on short, similar keys ("peer#0", "peer#1", …), which skews the ring
// badly even at 128 virtual nodes; the finalizer spreads the points
// uniformly. The function is part of the placement contract — every shard
// must use the same one — so it is fixed here rather than configurable.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is the 64-bit murmur3 finalizer: a bijective avalanche mix.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the peer owning key: the first virtual node clockwise
// from the key's hash position.
func (r *Ring) Owner(key string) string {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].peer
}

// ReplicaSet returns the first n distinct peers clockwise from key's hash
// position: the owner first, then its ring successors. This is the
// replication placement contract — with replication factor n, the topic's
// primary is element 0 and its followers are elements 1..n-1, and every
// shard computes the same set with no coordination. n is capped at the
// peer count (a 3-shard ring cannot hold 4 copies).
func (r *Ring) ReplicaSet(key string, n int) []string {
	if n > len(r.peers) {
		n = len(r.peers)
	}
	if n <= 0 {
		return nil
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Successors returns the n distinct peers clockwise from key's owner,
// excluding the owner itself — the follower set a primary ships its
// journal to.
func (r *Ring) Successors(key string, n int) []string {
	set := r.ReplicaSet(key, n+1)
	if len(set) <= 1 {
		return nil
	}
	return set[1:]
}

// Peers returns the ring's peer list in sorted order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Contains reports whether peer is a member of the ring.
func (r *Ring) Contains(peer string) bool {
	i := sort.SearchStrings(r.peers, peer)
	return i < len(r.peers) && r.peers[i] == peer
}

// VirtualNodes returns the per-peer virtual-node count the ring was built
// with.
func (r *Ring) VirtualNodes() int { return r.vnodes }
