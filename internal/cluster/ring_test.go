package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func topicNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("topic-%04d", i)
	}
	return out
}

// TestRingDeterministicAcrossPeerOrder pins the core placement contract:
// every shard builds the ring independently from the same peer list, so
// the owner of every topic must be identical regardless of the order the
// peers were listed in.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	perms := [][]string{
		{peers[0], peers[1], peers[2]},
		{peers[2], peers[0], peers[1]},
		{peers[1], peers[2], peers[0]},
	}
	rings := make([]*Ring, len(perms))
	for i, p := range perms {
		r, err := New(p, 48)
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		rings[i] = r
	}
	for _, name := range topicNames(500) {
		want := rings[0].Owner(name)
		for i := 1; i < len(rings); i++ {
			if got := rings[i].Owner(name); got != want {
				t.Fatalf("owner of %q differs across peer orders: %q vs %q", name, got, want)
			}
		}
	}
}

// TestRingRepeatable asserts that rebuilding the same ring (a restart)
// reproduces identical placement — the property cluster recovery depends
// on, since no placement table is persisted anywhere.
func TestRingRepeatable(t *testing.T) {
	peers := []string{"s0", "s1", "s2", "s3", "s4"}
	a, err := New(peers, 0) // 0 selects DefaultVirtualNodes
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("vnodes %d, want default %d", a.VirtualNodes(), DefaultVirtualNodes)
	}
	b, err := New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range topicNames(1000) {
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("ring rebuild changed owner of %q", name)
		}
	}
}

// TestRingBalance checks that virtual nodes spread load: over 3 shards and
// many topics every shard owns a non-trivial share. The bound is loose
// (hashing is statistical, not exact) but catches gross imbalance, e.g. a
// broken point sort assigning everything to one peer.
func TestRingBalance(t *testing.T) {
	peers := []string{"shard-a", "shard-b", "shard-c"}
	r, err := New(peers, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	names := topicNames(3000)
	for _, name := range names {
		counts[r.Owner(name)]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / float64(len(names))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("peer %s owns %.1f%% of topics (counts %v)", p, 100*share, counts)
		}
	}
}

// TestRingMinimalRemapping asserts consistent hashing's defining property:
// adding a peer moves roughly 1/n of the keys — to the new peer only —
// and never reshuffles keys between surviving peers.
func TestRingMinimalRemapping(t *testing.T) {
	old, err := New([]string{"s0", "s1", "s2"}, 96)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New([]string{"s0", "s1", "s2", "s3"}, 96)
	if err != nil {
		t.Fatal(err)
	}
	names := topicNames(4000)
	moved := 0
	for _, name := range names {
		before, after := old.Owner(name), grown.Owner(name)
		if before == after {
			continue
		}
		if after != "s3" {
			t.Fatalf("topic %q moved %s → %s, but only the new peer may gain keys", name, before, after)
		}
		moved++
	}
	share := float64(moved) / float64(len(names))
	// Expect ~25%; allow a wide statistical band.
	if share < 0.10 || share > 0.45 {
		t.Fatalf("adding a 4th peer remapped %.1f%% of topics, want ~25%%", 100*share)
	}
}

// TestRingVnodeCountMatters verifies the virtual-node knob is actually
// wired through: more virtual nodes tightens the balance (and different
// vnode counts are allowed to produce different placements).
func TestRingVnodeCountMatters(t *testing.T) {
	spread := func(vnodes int) float64 {
		r, err := New([]string{"s0", "s1", "s2"}, vnodes)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		names := topicNames(6000)
		for _, n := range names {
			counts[r.Owner(n)]++
		}
		min, max := len(names), 0
		for _, p := range r.Peers() {
			if counts[p] < min {
				min = counts[p]
			}
			if counts[p] > max {
				max = counts[p]
			}
		}
		return float64(max-min) / float64(len(names))
	}
	if s1, s256 := spread(1), spread(256); s256 >= s1 {
		t.Fatalf("256 vnodes should balance better than 1: spread %0.3f vs %0.3f", s256, s1)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := New([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := New([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty peer name accepted")
	}
	r, err := New([]string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains("a") || !r.Contains("b") || r.Contains("c") {
		t.Fatal("Contains is wrong")
	}
}

// TestTombstoneRoundTrip covers the hand-off marker's persistence:
// write → read → list → remove, plus rejection of undecodable markers.
func TestTombstoneRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ts := Tombstone{Epoch: 3, Target: "http://shard-b:8547"}
	if err := WriteTombstone(nil, dir, "prop37", ts); err != nil {
		t.Fatalf("WriteTombstone: %v", err)
	}
	got, err := ReadTombstone(dir, "prop37")
	if err != nil {
		t.Fatalf("ReadTombstone: %v", err)
	}
	if got != ts {
		t.Fatalf("round trip %+v, want %+v", got, ts)
	}
	if _, err := ReadTombstone(dir, "absent"); !os.IsNotExist(err) {
		t.Fatalf("missing tombstone: %v, want not-exist", err)
	}

	// A marker with no target is invalid; a corrupt one is skipped by the
	// directory scan but still listed topics survive.
	if err := os.WriteFile(filepath.Join(dir, "bad.moved"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned int
	all, err := LoadTombstones(dir, func(string, ...any) { warned++ })
	if err != nil {
		t.Fatalf("LoadTombstones: %v", err)
	}
	if len(all) != 1 || all["prop37"] != ts {
		t.Fatalf("LoadTombstones %v", all)
	}
	if warned == 0 {
		t.Fatal("corrupt tombstone did not warn")
	}

	if err := RemoveTombstone(nil, dir, "prop37"); err != nil {
		t.Fatal(err)
	}
	if err := RemoveTombstone(nil, dir, "prop37"); err != nil {
		t.Fatalf("second remove: %v", err)
	}
	if _, err := ReadTombstone(dir, "prop37"); !os.IsNotExist(err) {
		t.Fatal("tombstone survived removal")
	}
}

// TestRingOwnerUsableForSharding is a smoke test of the daemon's usage
// pattern: random topic names all resolve to a ring member.
func TestRingOwnerUsableForSharding(t *testing.T) {
	peers := []string{"http://127.0.0.1:9001", "http://127.0.0.1:9002", "http://127.0.0.1:9003"}
	r, err := New(peers, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("t%x", rng.Int63())
		if !r.Contains(r.Owner(name)) {
			t.Fatalf("owner of %q not in ring", name)
		}
	}
}
