package cluster

import "sort"

// Move is one step of a rebalance plan: hand topic to the shard To.
type Move struct {
	Topic string
	To    string
}

// PlanRebalance computes the moves a shard should drive to converge its
// held topics onto the current ring: every held topic whose ring owner is
// a different, live peer becomes one Move to that owner. Because the ring
// is a consistent hash, a peer-list change remaps only the topics whose
// arc changed hands — the plan *is* the minimal remap; topics the ring
// still assigns to self never appear in it.
//
// Topics whose new owner is reported down by alive are skipped (moving a
// topic onto a dead shard would just lose it again); they reappear in the
// next plan once the owner answers probes. The plan is ordered
// deterministically (by topic name) so concurrent planners on different
// shards interleave predictably and logs are comparable across runs.
func PlanRebalance(r *Ring, self string, held []string, alive func(peer string) bool) []Move {
	var out []Move
	for _, t := range held {
		owner := r.Owner(t)
		if owner == self {
			continue
		}
		if alive != nil && !alive(owner) {
			continue
		}
		out = append(out, Move{Topic: t, To: owner})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}
