package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped exponential retry delays with jitter. Every
// inter-shard call in the daemon (proxying, hand-off installs, replica
// shipping, health probes) retries through one of these so a hung or
// flapping peer costs a bounded, spread-out amount of waiting instead of
// either a tight retry loop or an unbounded stall.
type Backoff struct {
	// Base is the first retry's delay; attempt k waits Base<<k.
	Base time.Duration
	// Max caps the exponential growth.
	Max time.Duration
}

// DefaultBackoff is the daemon-wide retry schedule: 50ms, 100ms, 200ms, …
// capped at 2s.
var DefaultBackoff = Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}

// Delay returns the jittered delay before retry attempt (0-based): the
// capped exponential base scaled by a uniform factor in [0.5, 1.0], so
// simultaneous retries against a recovering peer spread out instead of
// arriving in lockstep.
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = DefaultBackoff.Base
	}
	max := b.Max
	if max <= 0 {
		max = DefaultBackoff.Max
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(jitter.Int63n(int64(d/2)+1))
}

// jitter is the process-wide jitter source. Retry spacing needs no
// determinism (nothing replays it), only contention-free concurrent use.
var jitter = lockedRand{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}
