package lexicon

import (
	"math"
	"testing"

	"triclust/internal/text"
)

func vocabOf(words ...string) *text.Vocabulary {
	v := text.NewVocabulary()
	for _, w := range words {
		v.AddWord(w)
	}
	return v
}

func TestBuiltinSanity(t *testing.T) {
	l := Builtin()
	if c, ok := l.Class("love"); !ok || c != Pos {
		t.Fatal("love should be Pos")
	}
	if c, ok := l.Class("evil"); !ok || c != Neg {
		t.Fatal("evil should be Neg")
	}
	if _, ok := l.Class("gmo"); ok {
		t.Fatal("topic word should be unlisted")
	}
	if l.Len() == 0 {
		t.Fatal("builtin empty")
	}
}

func TestSetAndWords(t *testing.T) {
	l := New()
	l.Set("b", Pos)
	l.Set("a", Pos)
	l.Set("z", Neg)
	pos := l.Words(Pos)
	if len(pos) != 2 || pos[0] != "a" || pos[1] != "b" {
		t.Fatalf("Words(Pos) = %v", pos)
	}
	if len(l.Words(Neg)) != 1 {
		t.Fatalf("Words(Neg) = %v", l.Words(Neg))
	}
}

func TestSetRejectsNeutral(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Set("meh", Neu)
}

func TestMerge(t *testing.T) {
	a := New()
	a.Set("w", Pos)
	b := New()
	b.Set("w", Neg)
	b.Set("v", Pos)
	a.Merge(b)
	if c, _ := a.Class("w"); c != Neg {
		t.Fatal("Merge did not overwrite")
	}
	if _, ok := a.Class("v"); !ok {
		t.Fatal("Merge did not add")
	}
}

func TestSf0RowsAreDistributions(t *testing.T) {
	l := Builtin()
	v := vocabOf("love", "evil", "gmo")
	s := l.Sf0(v, 3, 0.8)
	if s.Rows() != 3 || s.Cols() != 3 {
		t.Fatalf("Sf0 dims %dx%d", s.Rows(), s.Cols())
	}
	for i := 0; i < 3; i++ {
		var sum float64
		for _, x := range s.Row(i) {
			if x < 0 {
				t.Fatalf("negative prior at row %d", i)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if s.At(0, Pos) != 0.8 {
		t.Fatalf("love prior = %v", s.At(0, Pos))
	}
	if s.At(1, Neg) != 0.8 {
		t.Fatalf("evil prior = %v", s.At(1, Neg))
	}
	if math.Abs(s.At(2, 0)-1.0/3) > 1e-12 {
		t.Fatalf("unlisted word prior = %v, want uniform", s.At(2, 0))
	}
}

func TestSf0K2(t *testing.T) {
	l := Builtin()
	v := vocabOf("love", "gmo")
	s := l.Sf0(v, 2, 0.9)
	if math.Abs(s.At(0, Pos)-0.9) > 1e-12 || math.Abs(s.At(0, Neg)-0.1) > 1e-12 {
		t.Fatalf("k=2 row = %v", s.Row(0))
	}
	if s.At(1, 0) != 0.5 {
		t.Fatalf("k=2 unlisted = %v", s.At(1, 0))
	}
}

func TestSf0BadHitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Builtin().Sf0(vocabOf("x"), 3, 0.1)
}

func TestCoverage(t *testing.T) {
	l := Builtin()
	v := vocabOf("love", "evil", "gmo", "prop37")
	if got := l.Coverage(v); got != 0.5 {
		t.Fatalf("Coverage = %v, want 0.5", got)
	}
	if Builtin().Coverage(text.NewVocabulary()) != 0 {
		t.Fatal("empty vocab coverage should be 0")
	}
}

func TestInduceSeparatesClasses(t *testing.T) {
	docs := [][]string{
		{"yeson37", "label", "health"},
		{"yeson37", "health"},
		{"yeson37", "label"},
		{"noprop37", "cost", "farmer"},
		{"noprop37", "farmer"},
		{"noprop37", "cost"},
		{"shared", "words"}, // neutral doc skipped
	}
	labels := []int{Pos, Pos, Pos, Neg, Neg, Neg, Neu}
	l := Induce(docs, labels, 2, 2)
	if c, ok := l.Class("yeson37"); !ok || c != Pos {
		t.Fatalf("yeson37: class=%v ok=%v", c, ok)
	}
	if c, ok := l.Class("noprop37"); !ok || c != Neg {
		t.Fatalf("noprop37: class=%v ok=%v", c, ok)
	}
	if _, ok := l.Class("shared"); ok {
		t.Fatal("neutral doc word listed")
	}
}

func TestInduceMinCount(t *testing.T) {
	docs := [][]string{{"rareword"}, {"x"}}
	labels := []int{Pos, Neg}
	l := Induce(docs, labels, 5, 2)
	if _, ok := l.Class("rareword"); ok {
		t.Fatal("minCount ignored")
	}
}

func TestInduceAmbiguousWordSkipped(t *testing.T) {
	docs := [][]string{
		{"both"}, {"both"},
		{"both"}, {"both"},
	}
	labels := []int{Pos, Pos, Neg, Neg}
	l := Induce(docs, labels, 1, 1.5)
	if _, ok := l.Class("both"); ok {
		t.Fatal("balanced word should be unlisted")
	}
}

func TestInducePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Induce([][]string{{"x"}}, []int{Pos, Neg}, 1, 2)
}
