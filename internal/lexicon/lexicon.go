// Package lexicon provides sentiment word lists and the construction of
// the feature–sentiment prior matrix Sf0 used by the emotion-consistency
// regularizer ‖Sf − Sf0‖² (Eq. 5 of the paper).
//
// The paper seeds Sf0 from automatically built "Yes"/"No" word lists for
// the California ballot topics [Smith et al. 2013]. Those lists are not
// redistributable, so this package ships (a) a compact general-purpose
// polarity lexicon and (b) Induce, which rebuilds topic-specific lists
// from any labeled subset of a corpus — mirroring how the originals were
// produced.
package lexicon

import (
	"fmt"
	"sort"

	"triclust/internal/mat"
	"triclust/internal/text"
)

// Class indices follow the paper's convention throughout the repository.
const (
	Pos = 0
	Neg = 1
	Neu = 2
)

// Lexicon maps words to a sentiment class (Pos or Neg; unlisted words are
// implicitly neutral/unknown).
type Lexicon struct {
	class map[string]int
}

// New returns an empty lexicon.
func New() *Lexicon { return &Lexicon{class: make(map[string]int)} }

// Builtin returns a general-purpose English polarity lexicon. It plays the
// role of the MPQA-style seed vocabulary: broad-coverage, topic-agnostic,
// noisy on topic-specific jargon (exactly the failure mode the paper's
// tweet p3 example illustrates).
func Builtin() *Lexicon {
	l := New()
	for _, w := range []string{
		"good", "great", "love", "loved", "awesome", "excellent", "best",
		"support", "yes", "win", "happy", "safe", "right", "benefit",
		"healthy", "protect", "fair", "smart", "strong", "positive",
		"agree", "favor", "thank", "thanks", "hope", "improve", "better",
		"amazing", "wonderful", "proud", "success", "trust", "truth",
	} {
		l.Set(w, Pos)
	}
	for _, w := range []string{
		"bad", "evil", "hate", "hated", "awful", "terrible", "worst",
		"against", "no", "lose", "sad", "danger", "dangerous", "wrong",
		"harm", "toxic", "poison", "unfair", "stupid", "weak", "negative",
		"disagree", "oppose", "fear", "fail", "failure", "worse", "risk",
		"scam", "lie", "lies", "corrupt", "greed", "cancer", "kill",
	} {
		l.Set(w, Neg)
	}
	return l
}

// Set assigns word w to class c (Pos or Neg).
func (l *Lexicon) Set(w string, c int) {
	if c != Pos && c != Neg {
		panic("lexicon: Set accepts Pos or Neg only")
	}
	l.class[w] = c
}

// Class returns the class of w and whether w is listed.
func (l *Lexicon) Class(w string) (int, bool) {
	c, ok := l.class[w]
	return c, ok
}

// Len returns the number of listed words.
func (l *Lexicon) Len() int { return len(l.class) }

// Words returns the listed words of class c in sorted order.
func (l *Lexicon) Words(c int) []string {
	var out []string
	for w, wc := range l.class {
		if wc == c {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// Entries returns a copy of the word→class map, so a lexicon can be
// serialized (e.g. into a topic snapshot).
func (l *Lexicon) Entries() map[string]int {
	out := make(map[string]int, len(l.class))
	for w, c := range l.class {
		out[w] = c
	}
	return out
}

// FromEntries rebuilds a lexicon from a serialized word→class map. It
// rejects classes other than Pos and Neg (the only ones Set accepts).
func FromEntries(entries map[string]int) (*Lexicon, error) {
	l := New()
	for w, c := range entries {
		if c != Pos && c != Neg {
			return nil, fmt.Errorf("lexicon: word %q has invalid class %d", w, c)
		}
		l.class[w] = c
	}
	return l, nil
}

// Merge adds every entry of other, overwriting duplicates.
func (l *Lexicon) Merge(other *Lexicon) {
	for w, c := range other.class {
		l.class[w] = c
	}
}

// Sf0 builds the l×k feature-sentiment prior matrix. A listed word gets
// probability hit on its class with the remainder spread over the other
// classes; an unlisted word gets the uniform row 1/k (no prior opinion).
// hit must lie in [1/k, 1]; the paper does not specify a value, we default
// to 0.8 in callers.
func (l *Lexicon) Sf0(vocab *text.Vocabulary, k int, hit float64) *mat.Dense {
	if k < 2 {
		panic("lexicon: Sf0 requires k >= 2")
	}
	if hit < 1/float64(k) || hit > 1 {
		panic("lexicon: hit outside [1/k, 1]")
	}
	rest := (1 - hit) / float64(k-1)
	uniform := 1 / float64(k)
	out := mat.NewDense(vocab.Len(), k)
	for i := 0; i < vocab.Len(); i++ {
		row := out.Row(i)
		c, listed := l.Class(vocab.Word(i))
		if !listed || c >= k {
			for j := range row {
				row[j] = uniform
			}
			continue
		}
		for j := range row {
			row[j] = rest
		}
		row[c] = hit
	}
	return out
}

// Coverage returns the fraction of vocabulary words that are listed.
func (l *Lexicon) Coverage(vocab *text.Vocabulary) float64 {
	if vocab.Len() == 0 {
		return 0
	}
	hitCount := 0
	for i := 0; i < vocab.Len(); i++ {
		if _, ok := l.Class(vocab.Word(i)); ok {
			hitCount++
		}
	}
	return float64(hitCount) / float64(vocab.Len())
}

// Induce rebuilds a topic lexicon from labeled documents, the way the
// paper's "Yes"/"No" lists were built: a word is assigned to a class when
// its occurrence ratio in that class exceeds ratio (>1) times its
// occurrence in any other class and it appears at least minCount times.
// labels[i] is the class of docs[i] (Pos/Neg; other values are skipped).
func Induce(docs [][]string, labels []int, minCount int, ratio float64) *Lexicon {
	if len(docs) != len(labels) {
		panic("lexicon: Induce length mismatch")
	}
	if ratio <= 1 {
		panic("lexicon: ratio must exceed 1")
	}
	counts := map[string][2]float64{}
	var totals [2]float64
	for i, doc := range docs {
		c := labels[i]
		if c != Pos && c != Neg {
			continue
		}
		for _, w := range doc {
			e := counts[w]
			e[c]++
			counts[w] = e
			totals[c]++
		}
	}
	out := New()
	// Normalize by class volume so the majority class does not swallow
	// every word.
	for w, e := range counts {
		if e[Pos]+e[Neg] < float64(minCount) {
			continue
		}
		p := e[Pos] / (totals[Pos] + 1)
		n := e[Neg] / (totals[Neg] + 1)
		switch {
		case p > ratio*n:
			out.Set(w, Pos)
		case n > ratio*p:
			out.Set(w, Neg)
		}
	}
	return out
}
