// Package sparse implements compressed sparse row (CSR) matrices and the
// sparse–dense kernels used by the tri-clustering algorithms.
//
// The data matrices of the paper — tweet–feature Xp, user–feature Xu,
// user–tweet Xr and the user–user retweet graph Gu — are extremely sparse
// (a tweet has tens of words out of a vocabulary of thousands), so every
// product against a tall-skinny factor matrix is computed as an SpMM in
// O(nnz·k) instead of O(rows·cols·k).
package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"triclust/internal/mat"
	"triclust/internal/par"
)

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz, ascending within each row
	val        []float64 // len nnz
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the element at (i, j) using binary search within row i.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := sort.SearchInts(m.colIdx[lo:hi], j) + lo
	if idx < hi && m.colIdx[idx] == j {
		return m.val[idx]
	}
	return 0
}

// Row returns the column indices and values of row i as sub-slices of the
// backing storage. Callers must not mutate them.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// Zeros returns an empty rows×cols CSR matrix.
func Zeros(rows, cols int) *CSR {
	return &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
}

// spmmCostPerRow estimates the scalar work per output row of an SpMM so
// package par can decide whether splitting pays: average row nnz times the
// dense width.
func (m *CSR) spmmCostPerRow(denseCols int) int {
	if m.rows == 0 {
		return 1
	}
	return (len(m.val)/m.rows + 1) * denseCols
}

// MulDense returns m·b as a dense matrix (rows×b.Cols()).
func (m *CSR) MulDense(b *mat.Dense) *mat.Dense {
	return m.MulDenseInto(nil, b)
}

// spmmBody is the pooled parallel body of MulDenseInto (see par.Body:
// pooled structs keep kernel launches allocation-free).
type spmmBody struct {
	m   *CSR
	b   *mat.Dense
	dst *mat.Dense
}

func (t *spmmBody) Range(_, lo, hi int) {
	m, b, dst := t.m, t.b, t.dst
	for i := lo; i < hi; i++ {
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		rlo, rhi := m.rowPtr[i], m.rowPtr[i+1]
		for p := rlo; p < rhi; p++ {
			v := m.val[p]
			brow := b.Row(m.colIdx[p])
			drow := orow[:len(brow)]
			for j, bv := range brow {
				drow[j] += v * bv
			}
		}
	}
}

var spmmBodyPool = sync.Pool{New: func() any { return new(spmmBody) }}

// MulDenseInto stores m·b into dst (rows×b.Cols()) and returns it; a nil
// dst allocates. dst must not alias b: rows of dst are zeroed before rows
// of b are gathered, so aliasing silently corrupts the product. Output
// rows are disjoint per input row, so the row range is split across
// workers by package par.
func (m *CSR) MulDenseInto(dst *mat.Dense, b *mat.Dense) *mat.Dense {
	if m.cols != b.Rows() {
		panic(fmt.Sprintf("sparse: MulDense %dx%d · %dx%d", m.rows, m.cols, b.Rows(), b.Cols()))
	}
	if dst == nil {
		dst = mat.NewDense(m.rows, b.Cols())
	} else if !dst.Dims(m.rows, b.Cols()) {
		panic(fmt.Sprintf("sparse: MulDenseInto dst is %dx%d, want %dx%d", dst.Rows(), dst.Cols(), m.rows, b.Cols()))
	}
	t := spmmBodyPool.Get().(*spmmBody)
	t.m, t.b, t.dst = m, b, dst
	par.Run(m.rows, m.spmmCostPerRow(b.Cols()), t)
	*t = spmmBody{}
	spmmBodyPool.Put(t)
	return dst
}

// MulTDense returns mᵀ·b as a dense matrix (cols×b.Cols()) without
// materializing the transpose.
func (m *CSR) MulTDense(b *mat.Dense) *mat.Dense {
	return m.MulTDenseInto(nil, b)
}

// MulTDenseInto stores mᵀ·b into dst (cols×b.Cols()) and returns it; a
// nil dst allocates. dst must not alias b (see MulDenseInto).
//
// The kernel scatters into output rows indexed by the columns of m, so it
// runs serially: hot paths that need a parallel transpose product should
// cache m.T() once and call MulDenseInto on it (a gather), as
// core.Problem does for Xp, Xu and Xr.
func (m *CSR) MulTDenseInto(dst *mat.Dense, b *mat.Dense) *mat.Dense {
	if m.rows != b.Rows() {
		panic(fmt.Sprintf("sparse: MulTDense %dx%d ᵀ· %dx%d", m.rows, m.cols, b.Rows(), b.Cols()))
	}
	if dst == nil {
		dst = mat.NewDense(m.cols, b.Cols())
	} else if !dst.Dims(m.cols, b.Cols()) {
		panic(fmt.Sprintf("sparse: MulTDenseInto dst is %dx%d, want %dx%d", dst.Rows(), dst.Cols(), m.cols, b.Cols()))
	} else {
		dst.Zero()
	}
	for i := 0; i < m.rows; i++ {
		brow := b.Row(i)
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			orow := dst.Row(m.colIdx[p])
			v := m.val[p]
			for j, bv := range brow {
				orow[j] += v * bv
			}
		}
	}
	return dst
}

// T returns the transpose as a new CSR matrix.
func (m *CSR) T() *CSR {
	return m.TransposeInto(nil, nil)
}

// TransposeInto stores mᵀ into dst, reusing dst's backing storage (a nil
// dst allocates one), with scratch providing the per-column cursor array
// (grown as needed and returned for reuse). Hot paths that retranspose
// per batch keep dst and scratch alive across calls so the steady state
// allocates nothing.
func (m *CSR) TransposeInto(dst *CSR, scratch *[]int) *CSR {
	if dst == nil {
		dst = &CSR{}
	}
	dst.rows, dst.cols = m.cols, m.rows
	dst.rowPtr = growInts(dst.rowPtr, m.cols+1)
	dst.colIdx = growInts(dst.colIdx, len(m.colIdx))
	dst.val = growFloats(dst.val, len(m.val))
	for j := range dst.rowPtr {
		dst.rowPtr[j] = 0
	}
	for _, j := range m.colIdx {
		dst.rowPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		dst.rowPtr[j+1] += dst.rowPtr[j]
	}
	var next []int
	if scratch != nil {
		*scratch = growInts(*scratch, m.cols)
		next = *scratch
	} else {
		next = make([]int, m.cols)
	}
	copy(next, dst.rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			j := m.colIdx[p]
			d := next[j]
			dst.colIdx[d] = i
			dst.val[d] = m.val[p]
			next[j]++
		}
	}
	return dst
}

// ScaleColsInPlace multiplies column j of m by s[j], mutating m. Only
// owners of a matrix that is not yet shared may call it (CSR values are
// otherwise treated as immutable).
func (m *CSR) ScaleColsInPlace(s []float64) {
	if len(s) != m.cols {
		panic("sparse: ScaleColsInPlace length mismatch")
	}
	for p, j := range m.colIdx {
		m.val[p] *= s[j]
	}
}

// FillValues overwrites every stored entry with v (v must be non-zero to
// preserve the no-explicit-zeros invariant). Used to clamp accumulated
// incidence counts to 0/1 without rebuilding the matrix.
func (m *CSR) FillValues(v float64) {
	if v == 0 {
		panic("sparse: FillValues(0) would store explicit zeros")
	}
	for p := range m.val {
		m.val[p] = v
	}
}

// FrobeniusSq returns Σ v² over stored entries.
func (m *CSR) FrobeniusSq() float64 {
	var s float64
	for _, v := range m.val {
		s += v * v
	}
	return s
}

// Sum returns the sum of stored entries.
func (m *CSR) Sum() float64 {
	var s float64
	for _, v := range m.val {
		s += v
	}
	return s
}

// RowSums returns the vector of per-row sums.
func (m *CSR) RowSums() []float64 {
	return m.RowSumsInto(nil)
}

// RowSumsInto computes the per-row sums into dst, reusing its backing
// array when large enough.
func (m *CSR) RowSumsInto(dst []float64) []float64 {
	out := growFloats(dst, m.rows)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		var s float64
		for p := lo; p < hi; p++ {
			s += m.val[p]
		}
		out[i] = s
	}
	return out
}

// ColSums returns the vector of per-column sums.
func (m *CSR) ColSums() []float64 {
	out := make([]float64, m.cols)
	for p, j := range m.colIdx {
		out[j] += m.val[p]
	}
	return out
}

// ToDense expands m to a dense matrix. Intended for tests and tiny inputs.
func (m *CSR) ToDense() *mat.Dense {
	out := mat.NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			out.Set(i, m.colIdx[p], m.val[p])
		}
	}
	return out
}

// ResidualFrobeniusSq returns ||X − U·C·Vᵀ||_F² where X = m (rows×cols),
// U is rows×k, C is k×k and V is cols×k, evaluated without densifying X:
//
//	||X||² − 2·⟨X, U C Vᵀ⟩ + ||U C Vᵀ||²
//
// using ⟨X, UCVᵀ⟩ = Σ_{(i,j)∈nnz} X(i,j)·(UCVᵀ)(i,j) and
// ||UCVᵀ||² = tr(Cᵀ UᵀU C VᵀV). Pass C = nil for the two-factor residual
// ||X − U Vᵀ||² (as in the Xr ≈ Su Spᵀ term).
func (m *CSR) ResidualFrobeniusSq(u, c, v *mat.Dense) float64 {
	return m.ResidualFrobeniusSqWS(u, c, v, nil)
}

// crossBody computes the per-chunk partial sums of the residual cross
// term Σ X(i,j)·(UCVᵀ)(i,j); pooled with its partial buffer so loss
// evaluation stays allocation-free after warmup.
type crossBody struct {
	m     *CSR
	uc, v *mat.Dense
	parts []float64
}

func (t *crossBody) Range(chunk, lo, hi int) {
	m, uc, v := t.m, t.uc, t.v
	var sum float64
	for i := lo; i < hi; i++ {
		rlo, rhi := m.rowPtr[i], m.rowPtr[i+1]
		urow := uc.Row(i)
		for p := rlo; p < rhi; p++ {
			vrow := v.Row(m.colIdx[p])
			var dot float64
			for q, uv := range urow {
				dot += uv * vrow[q]
			}
			sum += m.val[p] * dot
		}
	}
	t.parts[chunk] = sum
}

var crossBodyPool = sync.Pool{New: func() any { return new(crossBody) }}

// ResidualFrobeniusSqWS is ResidualFrobeniusSq drawing its temporaries
// (U·C and the two Gram matrices) from ws; a nil ws allocates. The
// nnz-sized cross term Σ X(i,j)·(UCVᵀ)(i,j) is reduced over parallel row
// chunks in chunk order.
func (m *CSR) ResidualFrobeniusSqWS(u, c, v *mat.Dense, ws *mat.Workspace) float64 {
	k := u.Cols()
	if v.Cols() != k {
		panic("sparse: ResidualFrobeniusSq factor rank mismatch")
	}
	if u.Rows() != m.rows || v.Rows() != m.cols {
		panic("sparse: ResidualFrobeniusSq shape mismatch")
	}
	if ws == nil {
		ws = mat.NewWorkspace()
	}
	// uc = U·C (rows×k); with C==nil, uc = U.
	uc := u
	var ucScratch *mat.Dense
	if c != nil {
		if !c.Dims(k, k) {
			panic("sparse: ResidualFrobeniusSq core must be k×k")
		}
		ucScratch = ws.Get(u.Rows(), k)
		ucScratch.Mul(u, c)
		uc = ucScratch
	}
	t := crossBodyPool.Get().(*crossBody)
	if cap(t.parts) < par.MaxChunks() {
		t.parts = make([]float64, par.MaxChunks())
	}
	t.parts = t.parts[:cap(t.parts)]
	t.m, t.uc, t.v = m, uc, v
	used := par.Run(m.rows, m.spmmCostPerRow(k), t)
	cross := 0.0
	for chunk := 0; chunk < used; chunk++ {
		cross += t.parts[chunk]
	}
	t.m, t.uc, t.v = nil, nil, nil
	crossBodyPool.Put(t)

	gramU := mat.GramInto(ws.Get(k, k), uc)
	gramV := mat.GramInto(ws.Get(k, k), v)
	normApprox := mat.Dot(gramU, gramV)
	ws.Put(gramU, gramV, ucScratch)
	return m.FrobeniusSq() - 2*cross + normApprox
}

// ScaleRows multiplies row i by s[i], returning a new matrix.
func (m *CSR) ScaleRows(s []float64) *CSR {
	if len(s) != m.rows {
		panic("sparse: ScaleRows length mismatch")
	}
	out := &CSR{rows: m.rows, cols: m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val))}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			out.val[p] = m.val[p] * s[i]
		}
	}
	return out
}

// ScaleCols multiplies column j by s[j], returning a new matrix.
func (m *CSR) ScaleCols(s []float64) *CSR {
	if len(s) != m.cols {
		panic("sparse: ScaleCols length mismatch")
	}
	out := &CSR{rows: m.rows, cols: m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val))}
	for p, j := range m.colIdx {
		out.val[p] = m.val[p] * s[j]
	}
	return out
}

// SelectRows returns the sub-matrix of the given rows, in order.
func (m *CSR) SelectRows(rows []int) *CSR {
	b := NewCOO(len(rows), m.cols)
	for newI, i := range rows {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("sparse: SelectRows index %d out of %d", i, m.rows))
		}
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			b.Add(newI, m.colIdx[p], m.val[p])
		}
	}
	return b.ToCSR()
}

// MaxAbs returns the largest |v| over stored entries, 0 for empty matrices.
func (m *CSR) MaxAbs() float64 {
	var best float64
	for _, v := range m.val {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}
