// Package sparse implements compressed sparse row (CSR) matrices and the
// sparse–dense kernels used by the tri-clustering algorithms.
//
// The data matrices of the paper — tweet–feature Xp, user–feature Xu,
// user–tweet Xr and the user–user retweet graph Gu — are extremely sparse
// (a tweet has tens of words out of a vocabulary of thousands), so every
// product against a tall-skinny factor matrix is computed as an SpMM in
// O(nnz·k) instead of O(rows·cols·k).
package sparse

import (
	"fmt"
	"math"
	"sort"

	"triclust/internal/mat"
)

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz, ascending within each row
	val        []float64 // len nnz
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the element at (i, j) using binary search within row i.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := sort.SearchInts(m.colIdx[lo:hi], j) + lo
	if idx < hi && m.colIdx[idx] == j {
		return m.val[idx]
	}
	return 0
}

// Row returns the column indices and values of row i as sub-slices of the
// backing storage. Callers must not mutate them.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// Zeros returns an empty rows×cols CSR matrix.
func Zeros(rows, cols int) *CSR {
	return &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
}

// MulDense returns m·b as a dense matrix (rows×b.Cols()).
func (m *CSR) MulDense(b *mat.Dense) *mat.Dense {
	if m.cols != b.Rows() {
		panic(fmt.Sprintf("sparse: MulDense %dx%d · %dx%d", m.rows, m.cols, b.Rows(), b.Cols()))
	}
	out := mat.NewDense(m.rows, b.Cols())
	for i := 0; i < m.rows; i++ {
		orow := out.Row(i)
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			v := m.val[p]
			brow := b.Row(m.colIdx[p])
			for j, bv := range brow {
				orow[j] += v * bv
			}
		}
	}
	return out
}

// MulTDense returns mᵀ·b as a dense matrix (cols×b.Cols()) without
// materializing the transpose.
func (m *CSR) MulTDense(b *mat.Dense) *mat.Dense {
	if m.rows != b.Rows() {
		panic(fmt.Sprintf("sparse: MulTDense %dx%d ᵀ· %dx%d", m.rows, m.cols, b.Rows(), b.Cols()))
	}
	out := mat.NewDense(m.cols, b.Cols())
	for i := 0; i < m.rows; i++ {
		brow := b.Row(i)
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			orow := out.Row(m.colIdx[p])
			v := m.val[p]
			for j, bv := range brow {
				orow[j] += v * bv
			}
		}
	}
	return out
}

// T returns the transpose as a new CSR matrix.
func (m *CSR) T() *CSR {
	counts := make([]int, m.cols+1)
	for _, j := range m.colIdx {
		counts[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		counts[j+1] += counts[j]
	}
	rowPtr := counts
	colIdx := make([]int, len(m.colIdx))
	val := make([]float64, len(m.val))
	next := make([]int, m.cols)
	copy(next, rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			j := m.colIdx[p]
			dst := next[j]
			colIdx[dst] = i
			val[dst] = m.val[p]
			next[j]++
		}
	}
	return &CSR{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// FrobeniusSq returns Σ v² over stored entries.
func (m *CSR) FrobeniusSq() float64 {
	var s float64
	for _, v := range m.val {
		s += v * v
	}
	return s
}

// Sum returns the sum of stored entries.
func (m *CSR) Sum() float64 {
	var s float64
	for _, v := range m.val {
		s += v
	}
	return s
}

// RowSums returns the vector of per-row sums.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		var s float64
		for p := lo; p < hi; p++ {
			s += m.val[p]
		}
		out[i] = s
	}
	return out
}

// ColSums returns the vector of per-column sums.
func (m *CSR) ColSums() []float64 {
	out := make([]float64, m.cols)
	for p, j := range m.colIdx {
		out[j] += m.val[p]
	}
	return out
}

// ToDense expands m to a dense matrix. Intended for tests and tiny inputs.
func (m *CSR) ToDense() *mat.Dense {
	out := mat.NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			out.Set(i, m.colIdx[p], m.val[p])
		}
	}
	return out
}

// ResidualFrobeniusSq returns ||X − U·C·Vᵀ||_F² where X = m (rows×cols),
// U is rows×k, C is k×k and V is cols×k, evaluated without densifying X:
//
//	||X||² − 2·⟨X, U C Vᵀ⟩ + ||U C Vᵀ||²
//
// using ⟨X, UCVᵀ⟩ = Σ_{(i,j)∈nnz} X(i,j)·(UCVᵀ)(i,j) and
// ||UCVᵀ||² = tr(Cᵀ UᵀU C VᵀV). Pass C = nil for the two-factor residual
// ||X − U Vᵀ||² (as in the Xr ≈ Su Spᵀ term).
func (m *CSR) ResidualFrobeniusSq(u, c, v *mat.Dense) float64 {
	k := u.Cols()
	if v.Cols() != k {
		panic("sparse: ResidualFrobeniusSq factor rank mismatch")
	}
	if u.Rows() != m.rows || v.Rows() != m.cols {
		panic("sparse: ResidualFrobeniusSq shape mismatch")
	}
	// uc = U·C (rows×k); with C==nil, uc = U.
	uc := u
	if c != nil {
		if !c.Dims(k, k) {
			panic("sparse: ResidualFrobeniusSq core must be k×k")
		}
		uc = mat.Product(u, c)
	}
	cross := 0.0
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		urow := uc.Row(i)
		for p := lo; p < hi; p++ {
			vrow := v.Row(m.colIdx[p])
			var dot float64
			for q, uv := range urow {
				dot += uv * vrow[q]
			}
			cross += m.val[p] * dot
		}
	}
	gramU := mat.Gram(uc) // k×k
	gramV := mat.Gram(v)  // k×k
	normApprox := mat.Dot(gramU, gramV)
	return m.FrobeniusSq() - 2*cross + normApprox
}

// ScaleRows multiplies row i by s[i], returning a new matrix.
func (m *CSR) ScaleRows(s []float64) *CSR {
	if len(s) != m.rows {
		panic("sparse: ScaleRows length mismatch")
	}
	out := &CSR{rows: m.rows, cols: m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val))}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			out.val[p] = m.val[p] * s[i]
		}
	}
	return out
}

// ScaleCols multiplies column j by s[j], returning a new matrix.
func (m *CSR) ScaleCols(s []float64) *CSR {
	if len(s) != m.cols {
		panic("sparse: ScaleCols length mismatch")
	}
	out := &CSR{rows: m.rows, cols: m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val))}
	for p, j := range m.colIdx {
		out.val[p] = m.val[p] * s[j]
	}
	return out
}

// SelectRows returns the sub-matrix of the given rows, in order.
func (m *CSR) SelectRows(rows []int) *CSR {
	b := NewCOO(len(rows), m.cols)
	for newI, i := range rows {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("sparse: SelectRows index %d out of %d", i, m.rows))
		}
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			b.Add(newI, m.colIdx[p], m.val[p])
		}
	}
	return b.ToCSR()
}

// MaxAbs returns the largest |v| over stored entries, 0 for empty matrices.
func (m *CSR) MaxAbs() float64 {
	var best float64
	for _, v := range m.val {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}
