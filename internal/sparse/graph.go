package sparse

import "triclust/internal/mat"

// Degrees returns the degree vector of a (weighted) adjacency matrix:
// d(i) = Σ_j G(i,j).
func Degrees(g *CSR) []float64 { return g.RowSums() }

// LaplacianMulDense computes L·B = (D − G)·B for the graph Laplacian of
// adjacency g without forming L: D·B is a row scaling by degrees, G·B is an
// SpMM. The result is dense (g.Rows()×B.Cols()).
func LaplacianMulDense(g *CSR, b *mat.Dense) *mat.Dense {
	deg := Degrees(g)
	gb := g.MulDense(b)
	out := mat.NewDense(g.Rows(), b.Cols())
	for i := 0; i < g.Rows(); i++ {
		brow := b.Row(i)
		gbrow := gb.Row(i)
		orow := out.Row(i)
		d := deg[i]
		for j := range orow {
			orow[j] = d*brow[j] - gbrow[j]
		}
	}
	return out
}

// DegreeMulDense computes D·B where D = diag(degrees of g).
func DegreeMulDense(g *CSR, b *mat.Dense) *mat.Dense {
	deg := Degrees(g)
	out := mat.NewDense(g.Rows(), b.Cols())
	for i := 0; i < g.Rows(); i++ {
		d := deg[i]
		brow := b.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = d * brow[j]
		}
	}
	return out
}

// GraphRegularization returns tr(Sᵀ L S) = ½ Σ_{ij} G(i,j)·||S(i)−S(j)||²,
// the user-graph smoothness penalty of Eq. 6. It is computed from the
// identity tr(SᵀLS) = tr(SᵀDS) − tr(SᵀGS) without forming L.
func GraphRegularization(g *CSR, s *mat.Dense) float64 {
	ls := LaplacianMulDense(g, s)
	return mat.Dot(s, ls)
}

// Symmetrize returns (G + Gᵀ)/2 — the paper's user–user retweet graph is
// used undirected for the Laplacian regularizer.
func Symmetrize(g *CSR) *CSR {
	if g.Rows() != g.Cols() {
		panic("sparse: Symmetrize requires a square matrix")
	}
	b := NewCOO(g.Rows(), g.Cols())
	for i := 0; i < g.Rows(); i++ {
		cols, vals := g.Row(i)
		for p, j := range cols {
			b.Add(i, j, vals[p]/2)
			b.Add(j, i, vals[p]/2)
		}
	}
	return b.ToCSR()
}

// DropDiagonal returns g with its diagonal removed (self-loops contribute
// nothing to the Laplacian but distort degree-based normalizations).
func DropDiagonal(g *CSR) *CSR {
	b := NewCOO(g.Rows(), g.Cols())
	for i := 0; i < g.Rows(); i++ {
		cols, vals := g.Row(i)
		for p, j := range cols {
			if i != j {
				b.Add(i, j, vals[p])
			}
		}
	}
	return b.ToCSR()
}
