package sparse

import (
	"sync"

	"triclust/internal/mat"
	"triclust/internal/par"
)

// Degrees returns the degree vector of a (weighted) adjacency matrix:
// d(i) = Σ_j G(i,j).
func Degrees(g *CSR) []float64 { return g.RowSums() }

// LaplacianMulDense computes L·B = (D − G)·B for the graph Laplacian of
// adjacency g without forming L: D·B is a row scaling by degrees, G·B is an
// SpMM. The result is dense (g.Rows()×B.Cols()).
func LaplacianMulDense(g *CSR, b *mat.Dense) *mat.Dense {
	return LaplacianMulDenseInto(nil, g, nil, b)
}

// LaplacianMulDenseInto is LaplacianMulDense writing into dst (nil
// allocates); dst must not alias b (see CSR.MulDenseInto). deg may carry
// precomputed Degrees(g) — solvers cache it so repeated Laplacian
// products skip the O(nnz) degree pass — or be nil to compute it here.
// The row loop fuses the SpMM with the degree scaling and is split
// across workers.
func LaplacianMulDenseInto(dst *mat.Dense, g *CSR, deg []float64, b *mat.Dense) *mat.Dense {
	if deg == nil {
		deg = Degrees(g)
	}
	if dst == nil {
		dst = mat.NewDense(g.Rows(), b.Cols())
	}
	gb := g.MulDenseInto(dst, b)
	t := diagBodyPool.Get().(*diagBody)
	t.deg, t.b, t.dst, t.subtract = deg, b, gb, true
	par.Run(g.Rows(), b.Cols()+1, t)
	*t = diagBody{}
	diagBodyPool.Put(t)
	return gb
}

// diagBody applies the diagonal degree term: dst ← D·b (or D·b − dst when
// subtract is set, completing the Laplacian L·b = D·b − G·b). Pooled so
// the launch does not allocate (see par.Body).
type diagBody struct {
	deg      []float64
	b, dst   *mat.Dense
	subtract bool
}

func (t *diagBody) Range(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		d := t.deg[i]
		brow := t.b.Row(i)
		orow := t.dst.Row(i)
		if t.subtract {
			for j := range orow {
				orow[j] = d*brow[j] - orow[j]
			}
		} else {
			for j := range orow {
				orow[j] = d * brow[j]
			}
		}
	}
}

var diagBodyPool = sync.Pool{New: func() any { return new(diagBody) }}

// DegreeMulDense computes D·B where D = diag(degrees of g).
func DegreeMulDense(g *CSR, b *mat.Dense) *mat.Dense {
	return DegreeMulDenseInto(nil, g, nil, b)
}

// DegreeMulDenseInto is DegreeMulDense writing into dst (nil allocates),
// with an optional precomputed degree vector as in LaplacianMulDenseInto.
// dst may alias b (each element is read before it is written).
func DegreeMulDenseInto(dst *mat.Dense, g *CSR, deg []float64, b *mat.Dense) *mat.Dense {
	if deg == nil {
		deg = Degrees(g)
	}
	if dst == nil {
		dst = mat.NewDense(g.Rows(), b.Cols())
	}
	t := diagBodyPool.Get().(*diagBody)
	t.deg, t.b, t.dst, t.subtract = deg, b, dst, false
	par.Run(g.Rows(), b.Cols()+1, t)
	*t = diagBody{}
	diagBodyPool.Put(t)
	return dst
}

// GraphRegularization returns tr(Sᵀ L S) = ½ Σ_{ij} G(i,j)·||S(i)−S(j)||²,
// the user-graph smoothness penalty of Eq. 6. It is computed from the
// identity tr(SᵀLS) = tr(SᵀDS) − tr(SᵀGS) without forming L.
func GraphRegularization(g *CSR, s *mat.Dense) float64 {
	return GraphRegularizationWS(g, nil, s, nil)
}

// GraphRegularizationWS is GraphRegularization with an optional
// precomputed degree vector and workspace for the L·S temporary.
func GraphRegularizationWS(g *CSR, deg []float64, s *mat.Dense, ws *mat.Workspace) float64 {
	var dst *mat.Dense
	if ws != nil {
		dst = ws.Get(g.Rows(), s.Cols())
	}
	ls := LaplacianMulDenseInto(dst, g, deg, s)
	out := mat.Dot(s, ls)
	if ws != nil {
		ws.Put(dst)
	}
	return out
}

// Symmetrize returns (G + Gᵀ)/2 — the paper's user–user retweet graph is
// used undirected for the Laplacian regularizer.
func Symmetrize(g *CSR) *CSR {
	if g.Rows() != g.Cols() {
		panic("sparse: Symmetrize requires a square matrix")
	}
	b := NewCOO(g.Rows(), g.Cols())
	for i := 0; i < g.Rows(); i++ {
		cols, vals := g.Row(i)
		for p, j := range cols {
			b.Add(i, j, vals[p]/2)
			b.Add(j, i, vals[p]/2)
		}
	}
	return b.ToCSR()
}

// DropDiagonal returns g with its diagonal removed (self-loops contribute
// nothing to the Laplacian but distort degree-based normalizations).
func DropDiagonal(g *CSR) *CSR {
	b := NewCOO(g.Rows(), g.Cols())
	for i := 0; i < g.Rows(); i++ {
		cols, vals := g.Row(i)
		for p, j := range cols {
			if i != j {
				b.Add(i, j, vals[p])
			}
		}
	}
	return b.ToCSR()
}
