package sparse

import (
	"fmt"
	"math/rand"
	"testing"

	"triclust/internal/mat"
)

// Corpus-like shapes: thousands of rows, sparse rows of tens of entries,
// multiplied against tall-skinny k ≤ 8 factors. Run with
// `go test -bench . -benchmem ./internal/sparse`.

var benchSpShapes = []struct {
	rows, cols, k int
	density       float64
}{
	{2000, 500, 3, 0.02},
	{20000, 2000, 3, 0.005},
	{20000, 2000, 8, 0.005},
}

func benchCSR(rows, cols int, density float64) *CSR {
	rng := rand.New(rand.NewSource(3))
	return randomCSR(rng, rows, cols, density)
}

func BenchmarkMulDense(b *testing.B) {
	for _, s := range benchSpShapes {
		b.Run(fmt.Sprintf("%dx%d_k%d", s.rows, s.cols, s.k), func(b *testing.B) {
			x := benchCSR(s.rows, s.cols, s.density)
			rng := rand.New(rand.NewSource(4))
			d := mat.RandomNonNegative(rng, s.cols, s.k, 0.1, 1)
			out := mat.NewDense(s.rows, s.k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.MulDenseInto(out, d)
			}
		})
	}
}

func BenchmarkMulTDenseScatterVsCachedGather(b *testing.B) {
	for _, s := range benchSpShapes {
		x := benchCSR(s.rows, s.cols, s.density)
		rng := rand.New(rand.NewSource(5))
		d := mat.RandomNonNegative(rng, s.rows, s.k, 0.1, 1)
		b.Run(fmt.Sprintf("scatter/%dx%d_k%d", s.rows, s.cols, s.k), func(b *testing.B) {
			out := mat.NewDense(s.cols, s.k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.MulTDenseInto(out, d)
			}
		})
		b.Run(fmt.Sprintf("gather/%dx%d_k%d", s.rows, s.cols, s.k), func(b *testing.B) {
			xt := x.T()
			out := mat.NewDense(s.cols, s.k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xt.MulDenseInto(out, d)
			}
		})
	}
}

func BenchmarkLaplacianMulDense(b *testing.B) {
	g := benchCSR(5000, 5000, 0.002)
	rng := rand.New(rand.NewSource(6))
	d := mat.RandomNonNegative(rng, 5000, 3, 0.1, 1)
	deg := Degrees(g)
	out := mat.NewDense(5000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LaplacianMulDenseInto(out, g, deg, d)
	}
}

func BenchmarkResidualFrobeniusSq(b *testing.B) {
	for _, s := range benchSpShapes {
		b.Run(fmt.Sprintf("%dx%d_k%d", s.rows, s.cols, s.k), func(b *testing.B) {
			x := benchCSR(s.rows, s.cols, s.density)
			rng := rand.New(rand.NewSource(7))
			u := mat.RandomNonNegative(rng, s.rows, s.k, 0.1, 1)
			c := mat.RandomNonNegative(rng, s.k, s.k, 0.1, 1)
			v := mat.RandomNonNegative(rng, s.cols, s.k, 0.1, 1)
			ws := mat.NewWorkspace()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.ResidualFrobeniusSqWS(u, c, v, ws)
			}
		})
	}
}
