package sparse

import (
	"fmt"
	"sort"
)

// COO is a mutable coordinate-format builder for CSR matrices. Duplicate
// (i, j) entries are summed during conversion, so callers can accumulate
// counts (e.g. term frequencies) by repeated Add calls.
type COO struct {
	rows, cols int
	is, js     []int
	vs         []float64
}

// NewCOO returns an empty rows×cols builder.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: invalid dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Rows returns the number of rows.
func (b *COO) Rows() int { return b.rows }

// Cols returns the number of columns.
func (b *COO) Cols() int { return b.cols }

// Len returns the number of accumulated triplets (before deduplication).
func (b *COO) Len() int { return len(b.vs) }

// Add accumulates v at (i, j). Zero values are skipped.
func (b *COO) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.is = append(b.is, i)
	b.js = append(b.js, j)
	b.vs = append(b.vs, v)
}

// ToCSR converts the accumulated triplets to CSR, summing duplicates and
// dropping entries that cancel to exactly zero. The builder remains usable.
func (b *COO) ToCSR() *CSR {
	n := len(b.vs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		px, py := order[x], order[y]
		if b.is[px] != b.is[py] {
			return b.is[px] < b.is[py]
		}
		return b.js[px] < b.js[py]
	})

	rowPtr := make([]int, b.rows+1)
	colIdx := make([]int, 0, n)
	val := make([]float64, 0, n)
	for p := 0; p < n; {
		idx := order[p]
		i, j := b.is[idx], b.js[idx]
		sum := b.vs[idx]
		p++
		for p < n {
			q := order[p]
			if b.is[q] != i || b.js[q] != j {
				break
			}
			sum += b.vs[q]
			p++
		}
		if sum == 0 {
			continue
		}
		colIdx = append(colIdx, j)
		val = append(val, sum)
		rowPtr[i+1]++
	}
	for i := 0; i < b.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{rows: b.rows, cols: b.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// FromTriplets builds a CSR matrix directly from parallel triplet slices.
func FromTriplets(rows, cols int, is, js []int, vs []float64) *CSR {
	if len(is) != len(js) || len(js) != len(vs) {
		panic("sparse: FromTriplets ragged input")
	}
	b := NewCOO(rows, cols)
	for p := range vs {
		b.Add(is[p], js[p], vs[p])
	}
	return b.ToCSR()
}

// FromDenseRows builds a CSR matrix from a row-major dense [][]float64,
// storing only non-zero entries. Intended for tests.
func FromDenseRows(rows [][]float64) *CSR {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	cols := len(rows[0])
	b := NewCOO(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("sparse: FromDenseRows ragged input")
		}
		for j, v := range r {
			b.Add(i, j, v)
		}
	}
	return b.ToCSR()
}
