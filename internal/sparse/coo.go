package sparse

import (
	"fmt"
)

// COO is a mutable coordinate-format builder for CSR matrices. Duplicate
// (i, j) entries are summed during conversion, so callers can accumulate
// counts (e.g. term frequencies) by repeated Add calls.
//
// A builder can be recycled across batches with Reset, and can emit into
// a reusable CSR with ToCSRInto; together they make repeated graph
// construction allocation-free once buffers reach their steady size.
type COO struct {
	rows, cols int
	is, js     []int
	vs         []float64
	next       []int // scratch row cursors for ToCSRInto
}

// Reset clears the builder for reuse with new dimensions, keeping the
// accumulated triplet capacity.
func (b *COO) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: invalid dimensions %dx%d", rows, cols))
	}
	b.rows, b.cols = rows, cols
	b.is, b.js, b.vs = b.is[:0], b.js[:0], b.vs[:0]
}

// NewCOO returns an empty rows×cols builder.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: invalid dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Rows returns the number of rows.
func (b *COO) Rows() int { return b.rows }

// Cols returns the number of columns.
func (b *COO) Cols() int { return b.cols }

// Len returns the number of accumulated triplets (before deduplication).
func (b *COO) Len() int { return len(b.vs) }

// Add accumulates v at (i, j). Zero values are skipped.
func (b *COO) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.is = append(b.is, i)
	b.js = append(b.js, j)
	b.vs = append(b.vs, v)
}

// ToCSR converts the accumulated triplets to CSR, summing duplicates and
// dropping entries that cancel to exactly zero. The builder remains
// usable. It shares ToCSRInto's conversion so every path sums duplicates
// in the same deterministic order.
func (b *COO) ToCSR() *CSR {
	return b.ToCSRInto(nil)
}

// ToCSRInto converts the accumulated triplets to CSR like ToCSR, but
// reuses dst's backing storage (a nil dst allocates one). Duplicates are
// summed in row-major scatter order — deterministic for a given Add
// sequence — and entries that cancel to exactly zero are dropped. The
// builder remains usable; dst must not be the output of a previous
// conversion still in use.
func (b *COO) ToCSRInto(dst *CSR) *CSR {
	if dst == nil {
		dst = &CSR{}
	}
	n := len(b.vs)
	dst.rows, dst.cols = b.rows, b.cols
	dst.rowPtr = growInts(dst.rowPtr, b.rows+1)
	dst.colIdx = growInts(dst.colIdx, n)
	dst.val = growFloats(dst.val, n)
	b.next = growInts(b.next, b.rows)

	// Counting sort by row: starts in rowPtr[0..rows-1], cursors in next.
	for i := range b.next {
		b.next[i] = 0
	}
	for _, i := range b.is {
		b.next[i]++
	}
	start := 0
	for i := 0; i < b.rows; i++ {
		dst.rowPtr[i] = start
		start += b.next[i]
		b.next[i] = dst.rowPtr[i]
	}
	dst.rowPtr[b.rows] = n
	for p, i := range b.is {
		pos := b.next[i]
		b.next[i]++
		dst.colIdx[pos] = b.js[p]
		dst.val[pos] = b.vs[p]
	}

	// Per row: sort by column, merge duplicates, drop exact zeros,
	// compacting in place (the write cursor never passes the read one).
	w := 0
	for i := 0; i < b.rows; i++ {
		lo := dst.rowPtr[i]
		hi := n
		if i+1 < b.rows {
			hi = dst.rowPtr[i+1]
		}
		sortColVal(dst.colIdx[lo:hi], dst.val[lo:hi])
		dst.rowPtr[i] = w
		for p := lo; p < hi; {
			j := dst.colIdx[p]
			sum := dst.val[p]
			p++
			for p < hi && dst.colIdx[p] == j {
				sum += dst.val[p]
				p++
			}
			if sum == 0 {
				continue
			}
			dst.colIdx[w] = j
			dst.val[w] = sum
			w++
		}
	}
	dst.rowPtr[b.rows] = w
	dst.colIdx = dst.colIdx[:w]
	dst.val = dst.val[:w]
	return dst
}

// sortColVal sorts the (col, val) pairs by column: insertion sort for the
// short rows that dominate tweet graphs, an in-place quicksort above
// that. No allocation either way.
func sortColVal(cols []int, vals []float64) {
	for len(cols) > 24 {
		// Median-of-three pivot, Hoare partition; recurse on the smaller
		// half so stack depth stays logarithmic.
		mid := len(cols) / 2
		last := len(cols) - 1
		if cols[mid] < cols[0] {
			cols[mid], cols[0] = cols[0], cols[mid]
			vals[mid], vals[0] = vals[0], vals[mid]
		}
		if cols[last] < cols[0] {
			cols[last], cols[0] = cols[0], cols[last]
			vals[last], vals[0] = vals[0], vals[last]
		}
		if cols[last] < cols[mid] {
			cols[last], cols[mid] = cols[mid], cols[last]
			vals[last], vals[mid] = vals[mid], vals[last]
		}
		pivot := cols[mid]
		i, j := 0, last
		for {
			for cols[i] < pivot {
				i++
			}
			for cols[j] > pivot {
				j--
			}
			if i >= j {
				break
			}
			cols[i], cols[j] = cols[j], cols[i]
			vals[i], vals[j] = vals[j], vals[i]
			i++
			j--
		}
		if j+1 < len(cols)-j-1 {
			sortColVal(cols[:j+1], vals[:j+1])
			cols, vals = cols[j+1:], vals[j+1:]
		} else {
			sortColVal(cols[j+1:], vals[j+1:])
			cols, vals = cols[:j+1], vals[:j+1]
		}
	}
	for p := 1; p < len(cols); p++ {
		c, v := cols[p], vals[p]
		q := p - 1
		for q >= 0 && cols[q] > c {
			cols[q+1], vals[q+1] = cols[q], vals[q]
			q--
		}
		cols[q+1], vals[q+1] = c, v
	}
}

// growInts returns s with length n, reusing its backing array when large
// enough (contents unspecified).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats is growInts for float64 slices.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// FromTriplets builds a CSR matrix directly from parallel triplet slices.
func FromTriplets(rows, cols int, is, js []int, vs []float64) *CSR {
	if len(is) != len(js) || len(js) != len(vs) {
		panic("sparse: FromTriplets ragged input")
	}
	b := NewCOO(rows, cols)
	for p := range vs {
		b.Add(is[p], js[p], vs[p])
	}
	return b.ToCSR()
}

// FromDenseRows builds a CSR matrix from a row-major dense [][]float64,
// storing only non-zero entries. Intended for tests.
func FromDenseRows(rows [][]float64) *CSR {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	cols := len(rows[0])
	b := NewCOO(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("sparse: FromDenseRows ragged input")
		}
		for j, v := range r {
			b.Add(i, j, v)
		}
	}
	return b.ToCSR()
}
