package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"triclust/internal/mat"
)

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.Float64()*2)
			}
		}
	}
	return b.ToCSR()
}

func TestCOOToCSRBasic(t *testing.T) {
	b := NewCOO(2, 3)
	b.Add(0, 2, 1.5)
	b.Add(1, 0, 2.0)
	b.Add(0, 0, 3.0)
	m := b.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 0) != 3 || m.At(0, 2) != 1.5 || m.At(1, 0) != 2 || m.At(0, 1) != 0 {
		t.Fatalf("values wrong: %v %v %v %v", m.At(0, 0), m.At(0, 2), m.At(1, 0), m.At(0, 1))
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	b := NewCOO(1, 1)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(0, 0, 0.5)
	m := b.ToCSR()
	if m.NNZ() != 1 || m.At(0, 0) != 3.5 {
		t.Fatalf("dup sum: nnz=%d v=%v", m.NNZ(), m.At(0, 0))
	}
}

func TestCOOCancellationDropped(t *testing.T) {
	b := NewCOO(1, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	b.Add(0, 1, 2)
	m := b.ToCSR()
	if m.NNZ() != 1 {
		t.Fatalf("cancelled entry retained: nnz=%d", m.NNZ())
	}
}

func TestCOOZeroSkipped(t *testing.T) {
	b := NewCOO(1, 1)
	b.Add(0, 0, 0)
	if b.Len() != 0 {
		t.Fatal("zero value stored")
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zeros(2, 2).At(0, 5)
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(rng, 13, 7, 0.3)
	d := m.ToDense()
	for i := 0; i < 13; i++ {
		for j := 0; j < 7; j++ {
			if m.At(i, j) != d.At(i, j) {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSR(rng, 11, 9, 0.25)
	b := mat.RandomNonNegative(rng, 9, 3, 0, 1)
	got := a.MulDense(b)
	want := mat.Product(a.ToDense(), b)
	if !mat.Equal(got, want, 1e-10) {
		t.Fatal("MulDense mismatch vs dense reference")
	}
}

func TestMulTDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 11, 9, 0.25)
	b := mat.RandomNonNegative(rng, 11, 3, 0, 1)
	got := a.MulTDense(b)
	want := mat.Product(a.ToDense().T(), b)
	if !mat.Equal(got, want, 1e-10) {
		t.Fatal("MulTDense mismatch vs dense reference")
	}
}

func TestMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zeros(3, 4).MulDense(mat.NewDense(5, 2))
}

func TestTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(rng, 8, 12, 0.2)
	got := a.T().ToDense()
	want := a.ToDense().T()
	if !mat.Equal(got, want, 0) {
		t.Fatal("transpose mismatch")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.3)
		return mat.Equal(a.T().T().ToDense(), a.ToDense(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowColSums(t *testing.T) {
	m := FromDenseRows([][]float64{{1, 2, 0}, {0, 3, 4}})
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 7 {
		t.Fatalf("RowSums = %v", rs)
	}
	cs := m.ColSums()
	if cs[0] != 1 || cs[1] != 5 || cs[2] != 4 {
		t.Fatalf("ColSums = %v", cs)
	}
	if m.Sum() != 10 {
		t.Fatalf("Sum = %v", m.Sum())
	}
}

func TestFrobeniusSq(t *testing.T) {
	m := FromDenseRows([][]float64{{3, 4}})
	if m.FrobeniusSq() != 25 {
		t.Fatalf("FrobeniusSq = %v", m.FrobeniusSq())
	}
}

func TestResidualThreeFactor(t *testing.T) {
	// Compare against explicit dense computation ||X − U C Vᵀ||².
	rng := rand.New(rand.NewSource(5))
	x := randomCSR(rng, 9, 7, 0.3)
	u := mat.RandomNonNegative(rng, 9, 3, 0, 1)
	c := mat.RandomNonNegative(rng, 3, 3, 0, 1)
	v := mat.RandomNonNegative(rng, 7, 3, 0, 1)
	got := x.ResidualFrobeniusSq(u, c, v)

	approx := mat.NewDense(9, 7)
	approx.MulABT(mat.Product(u, c), v)
	want := mat.DiffFrobeniusSq(x.ToDense(), approx)
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("residual = %v, want %v", got, want)
	}
}

func TestResidualTwoFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randomCSR(rng, 6, 8, 0.4)
	u := mat.RandomNonNegative(rng, 6, 2, 0, 1)
	v := mat.RandomNonNegative(rng, 8, 2, 0, 1)
	got := x.ResidualFrobeniusSq(u, nil, v)
	approx := mat.NewDense(6, 8)
	approx.MulABT(u, v)
	want := mat.DiffFrobeniusSq(x.ToDense(), approx)
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("residual = %v, want %v", got, want)
	}
}

func TestResidualNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomCSR(rng, 5, 5, 0.4)
		u := mat.RandomNonNegative(rng, 5, 2, 0, 1)
		v := mat.RandomNonNegative(rng, 5, 2, 0, 1)
		return x.ResidualFrobeniusSq(u, nil, v) > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleRowsCols(t *testing.T) {
	m := FromDenseRows([][]float64{{1, 2}, {3, 4}})
	r := m.ScaleRows([]float64{2, 0.5})
	if r.At(0, 1) != 4 || r.At(1, 0) != 1.5 {
		t.Fatalf("ScaleRows wrong: %v %v", r.At(0, 1), r.At(1, 0))
	}
	c := m.ScaleCols([]float64{10, 0})
	if c.At(0, 0) != 10 || c.At(1, 1) != 0 {
		t.Fatalf("ScaleCols wrong: %v %v", c.At(0, 0), c.At(1, 1))
	}
	// Original untouched.
	if m.At(0, 0) != 1 {
		t.Fatal("ScaleRows mutated receiver")
	}
}

func TestSelectRows(t *testing.T) {
	m := FromDenseRows([][]float64{{1, 0}, {0, 2}, {3, 3}})
	s := m.SelectRows([]int{2, 0})
	if s.Rows() != 2 || s.At(0, 0) != 3 || s.At(1, 0) != 1 || s.At(1, 1) != 0 {
		t.Fatalf("SelectRows wrong: %v", s.ToDense())
	}
}

func TestDegreesAndLaplacian(t *testing.T) {
	// Path graph 0-1-2 with unit weights.
	g := FromDenseRows([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 0},
	})
	deg := Degrees(g)
	if deg[0] != 1 || deg[1] != 2 || deg[2] != 1 {
		t.Fatalf("Degrees = %v", deg)
	}
	s := mat.FromRows([][]float64{{1}, {0}, {1}})
	// tr(SᵀLS) = ½ ΣG(i,j)(s_i−s_j)² = ½(1+1+1+1) = 2.
	if got := GraphRegularization(g, s); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GraphRegularization = %v, want 2", got)
	}
	// Constant vector is in the Laplacian null space.
	ones := mat.FromRows([][]float64{{1}, {1}, {1}})
	if got := GraphRegularization(g, ones); math.Abs(got) > 1e-12 {
		t.Fatalf("L·1 should vanish, got %v", got)
	}
}

func TestGraphRegularizationMatchesPairwiseSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := randomCSR(rng, n, n, 0.3)
		g = Symmetrize(DropDiagonal(g))
		s := mat.RandomNonNegative(rng, n, 2, 0, 1)
		got := GraphRegularization(g, s)
		var want float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w := g.At(i, j)
				if w == 0 {
					continue
				}
				var d2 float64
				for q := 0; q < 2; q++ {
					d := s.At(i, q) - s.At(j, q)
					d2 += d * d
				}
				want += 0.5 * w * d2
			}
		}
		return math.Abs(got-want) <= 1e-8*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLaplacianDecomposition(t *testing.T) {
	// L·B must equal D·B − G·B.
	rng := rand.New(rand.NewSource(7))
	g := Symmetrize(DropDiagonal(randomCSR(rng, 6, 6, 0.4)))
	b := mat.RandomNonNegative(rng, 6, 3, 0, 1)
	lb := LaplacianMulDense(g, b)
	db := DegreeMulDense(g, b)
	gb := g.MulDense(b)
	diff := mat.NewDense(6, 3)
	diff.Sub(db, gb)
	if !mat.Equal(lb, diff, 1e-10) {
		t.Fatal("L·B != D·B − G·B")
	}
}

func TestSymmetrize(t *testing.T) {
	g := FromDenseRows([][]float64{{0, 2}, {0, 0}})
	s := Symmetrize(g)
	if s.At(0, 1) != 1 || s.At(1, 0) != 1 {
		t.Fatalf("Symmetrize = %v", s.ToDense())
	}
}

func TestDropDiagonal(t *testing.T) {
	g := FromDenseRows([][]float64{{5, 1}, {2, 7}})
	d := DropDiagonal(g)
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 || d.At(0, 1) != 1 || d.At(1, 0) != 2 {
		t.Fatalf("DropDiagonal = %v", d.ToDense())
	}
}

func TestFromTriplets(t *testing.T) {
	m := FromTriplets(2, 2, []int{0, 1}, []int{1, 0}, []float64{3, 4})
	if m.At(0, 1) != 3 || m.At(1, 0) != 4 {
		t.Fatal("FromTriplets wrong")
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromDenseRows([][]float64{{-9, 2}})
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if Zeros(2, 2).MaxAbs() != 0 {
		t.Fatal("MaxAbs of empty != 0")
	}
}

func TestEmptyMatrixOps(t *testing.T) {
	z := Zeros(3, 4)
	if z.NNZ() != 0 {
		t.Fatal("Zeros has entries")
	}
	b := mat.NewDense(4, 2)
	out := z.MulDense(b)
	if out.FrobeniusSq() != 0 {
		t.Fatal("empty SpMM non-zero")
	}
	if z.T().Rows() != 4 {
		t.Fatal("empty transpose wrong shape")
	}
}

func TestRowAccessor(t *testing.T) {
	m := FromDenseRows([][]float64{{0, 5, 0, 7}})
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 5 || vals[1] != 7 {
		t.Fatalf("Row = %v %v", cols, vals)
	}
	if m.RowNNZ(0) != 2 {
		t.Fatalf("RowNNZ = %d", m.RowNNZ(0))
	}
}
