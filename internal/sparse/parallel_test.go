package sparse

import (
	"math/rand"
	"testing"

	"triclust/internal/mat"
	"triclust/internal/par"
)

func withProcs(p int, fn func()) {
	par.SetProcs(p)
	defer par.SetProcs(0)
	fn()
}

// TestParallelSparseKernelsMatchSerial checks serial/parallel agreement
// within 1e-10 for the SpMM, Laplacian, degree and residual kernels at
// sizes crossing the par threshold.
func TestParallelSparseKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, cols, k := 3000, 500, 8
	x := randomCSR(rng, rows, cols, 0.02)
	dense := mat.RandomNonNegative(rng, cols, k, 0.1, 1)
	u := mat.RandomNonNegative(rng, rows, k, 0.1, 1)
	c := mat.RandomNonNegative(rng, k, k, 0.1, 1)
	v := mat.RandomNonNegative(rng, cols, k, 0.1, 1)
	g := randomCSR(rng, rows, rows, 0.005)
	gb := mat.RandomNonNegative(rng, rows, k, 0.1, 1)

	var serialMul, parMul *mat.Dense
	withProcs(1, func() { serialMul = x.MulDense(dense) })
	withProcs(4, func() { parMul = x.MulDense(dense) })
	if !mat.Equal(serialMul, parMul, 1e-10) {
		t.Fatal("MulDense: serial and parallel outputs differ beyond 1e-10")
	}

	var serialLap, parLap, serialDeg, parDeg *mat.Dense
	withProcs(1, func() {
		serialLap = LaplacianMulDense(g, gb)
		serialDeg = DegreeMulDense(g, gb)
	})
	withProcs(4, func() {
		parLap = LaplacianMulDense(g, gb)
		parDeg = DegreeMulDense(g, gb)
	})
	if !mat.Equal(serialLap, parLap, 1e-10) {
		t.Fatal("LaplacianMulDense: serial/parallel mismatch")
	}
	if !mat.Equal(serialDeg, parDeg, 1e-10) {
		t.Fatal("DegreeMulDense: serial/parallel mismatch")
	}

	var serialRes, parRes float64
	withProcs(1, func() { serialRes = x.ResidualFrobeniusSq(u, c, v) })
	withProcs(4, func() { parRes = x.ResidualFrobeniusSq(u, c, v) })
	if d := serialRes - parRes; d > 1e-10*(1+serialRes) || -d > 1e-10*(1+serialRes) {
		t.Fatalf("ResidualFrobeniusSq: serial %v vs parallel %v", serialRes, parRes)
	}
}

func TestMulDenseIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randomCSR(rng, 40, 20, 0.2)
	b := mat.RandomNonNegative(rng, 20, 3, 0.1, 1)
	dst := mat.NewDense(40, 3)
	dst.Fill(7) // stale values must be overwritten
	if got, want := x.MulDenseInto(dst, b), x.MulDense(b); !mat.Equal(got, want, 1e-14) {
		t.Fatal("MulDenseInto(dst) != MulDense")
	}
}

func TestMulTDenseIntoMatchesTransposeGather(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randomCSR(rng, 50, 30, 0.15)
	b := mat.RandomNonNegative(rng, 50, 3, 0.1, 1)
	dst := mat.NewDense(30, 3)
	dst.Fill(5)
	scatter := x.MulTDenseInto(dst, b)
	gather := x.T().MulDense(b)
	if !mat.Equal(scatter, gather, 1e-12) {
		t.Fatal("MulTDenseInto != T().MulDense")
	}
}

func TestLaplacianIntoWithCachedDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomCSR(rng, 60, 60, 0.1)
	b := mat.RandomNonNegative(rng, 60, 3, 0.1, 1)
	deg := Degrees(g)
	dst := mat.NewDense(60, 3)
	if got, want := LaplacianMulDenseInto(dst, g, deg, b), LaplacianMulDense(g, b); !mat.Equal(got, want, 1e-12) {
		t.Fatal("LaplacianMulDenseInto(deg) != LaplacianMulDense")
	}
	dst2 := mat.NewDense(60, 3)
	if got, want := DegreeMulDenseInto(dst2, g, deg, b), DegreeMulDense(g, b); !mat.Equal(got, want, 1e-12) {
		t.Fatal("DegreeMulDenseInto(deg) != DegreeMulDense")
	}
}
