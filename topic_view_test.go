// Tests for the RCU read plane: published views must be immutable,
// bit-identical to a quiesced topic at the same stream position
// (including across snapshot/restore), carry a sane convergence
// indicator, and survive a -race hammering of readers against
// concurrent Process, snapshot export, restore and epoch changes.
package triclust_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"triclust"
)

// viewEstimates collects every known user's estimate from a view.
func viewEstimates(v triclust.ReadView) map[int]triclust.Sentiment {
	out := make(map[int]triclust.Sentiment)
	for u := 0; u < v.Users(); u++ {
		if est, ok := v.UserEstimate(u); ok {
			out[u] = est
		}
	}
	return out
}

// requireSameView asserts two views carry the same fingerprint and
// bit-identical estimates (== on float64, no tolerance).
func requireSameView(t *testing.T, label string, a, b triclust.ReadView) {
	t.Helper()
	ab, ar := a.StreamPos()
	bb, br := b.StreamPos()
	if ab != bb || ar != br {
		t.Fatalf("%s: fingerprint (%d,%d) vs (%d,%d)", label, ab, ar, bb, br)
	}
	if a.KnownUsers() != b.KnownUsers() || a.Users() != b.Users() {
		t.Fatalf("%s: known %d/%d vs %d/%d", label, a.KnownUsers(), a.Users(), b.KnownUsers(), b.Users())
	}
	ea, eb := viewEstimates(a), viewEstimates(b)
	if len(ea) != len(eb) {
		t.Fatalf("%s: %d vs %d known users", label, len(ea), len(eb))
	}
	for u, sa := range ea {
		sb, ok := eb[u]
		if !ok {
			t.Fatalf("%s: user %d known in one view only", label, u)
		}
		if sa.Class != sb.Class || sa.Confidence != sb.Confidence {
			t.Fatalf("%s: user %d estimate %+v vs %+v (must be bit-identical)", label, u, sa, sb)
		}
	}
	fa, fb := a.FeatureSentiments(), b.FeatureSentiments()
	if len(fa) != len(fb) {
		t.Fatalf("%s: %d vs %d feature sentiments", label, len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Class != fb[i].Class || fa[i].Confidence != fb[i].Confidence {
			t.Fatalf("%s: feature %d sentiment %+v vs %+v", label, i, fa[i], fb[i])
		}
	}
}

// TestReadViewBitIdenticalMidStream is the read-plane acceptance test:
// views published mid-stream must equal, bit for bit, what an
// independent run of the same batches publishes at the same counter —
// and a topic restored from a mid-stream snapshot must publish the
// pre-snapshot view verbatim, then continue publishing identical views.
// Captured views are immutable: later batches must not disturb them.
func TestReadViewBitIdenticalMidStream(t *testing.T) {
	d := demoCorpus(t, 17)
	const days, cut = 8, 4
	batches := dayBatches(d, days)

	newTopic := func() *triclust.Topic {
		tp, err := triclust.NewTopic(d.Corpus.Users)
		if err != nil {
			t.Fatalf("NewTopic: %v", err)
		}
		return tp
	}

	// Run A: record the view after every batch.
	a := newTopic()
	views := make([]triclust.ReadView, 0, days)
	for day := 0; day < days; day++ {
		if _, err := a.Process(day, batches[day]); err != nil {
			t.Fatalf("run A day %d: %v", day, err)
		}
		views = append(views, a.ReadView())
	}

	// Run B: identical input, every per-day view must match A's.
	b := newTopic()
	for day := 0; day < days; day++ {
		if _, err := b.Process(day, batches[day]); err != nil {
			t.Fatalf("run B day %d: %v", day, err)
		}
		requireSameView(t, fmt.Sprintf("run B day %d", day), views[day], b.ReadView())
	}

	// Run C: snapshot at the cut, restore, continue. The restored topic's
	// first view must equal the cut view; subsequent views must keep
	// matching A's records.
	c := newTopic()
	for day := 0; day < cut; day++ {
		if _, err := c.Process(day, batches[day]); err != nil {
			t.Fatalf("run C day %d: %v", day, err)
		}
	}
	var snap bytes.Buffer
	if err := c.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := triclust.Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	requireSameView(t, "restored at cut", views[cut-1], restored.ReadView())
	for day := cut; day < days; day++ {
		if _, err := restored.Process(day, batches[day]); err != nil {
			t.Fatalf("restored day %d: %v", day, err)
		}
		requireSameView(t, fmt.Sprintf("restored day %d", day), views[day], restored.ReadView())
	}

	// Immutability: the day-0 capture still reports day-0 state.
	if got := views[0].Batches(); got != 1 {
		t.Fatalf("captured day-0 view mutated: batches = %d, want 1", got)
	}
	requireSameView(t, "day-0 capture", views[0], views[0])
}

// TestReadViewConvergenceLifecycle pins the progressive-answer contract:
// a fresh topic reports warming, a topic fed batches leaves warming once
// the vocabulary froze and the temporal window filled, the delta is a
// sane magnitude, and a skipped (empty) batch carries the view over —
// counter, fingerprint and convergence unchanged — instead of falsely
// re-classifying an unchanged stream as steady.
func TestReadViewConvergenceLifecycle(t *testing.T) {
	d := demoCorpus(t, 5)
	batches := dayBatches(d, 8)
	tp, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		t.Fatalf("NewTopic: %v", err)
	}

	v := tp.ReadView()
	if c := v.Convergence(); c.State != triclust.Warming || c.Batches != 0 {
		t.Fatalf("fresh topic: convergence %+v, want warming at 0 batches", c)
	}
	if _, ok := v.UserEstimate(0); ok {
		t.Fatal("fresh topic: user 0 unexpectedly known")
	}

	for day := 0; day < 8; day++ {
		if _, err := tp.Process(day, batches[day]); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		c := tp.ReadView().Convergence()
		if c.Batches != day+1 {
			t.Fatalf("day %d: convergence reports %d batches", day, c.Batches)
		}
		if c.Delta < 0 || c.Delta > 1 {
			t.Fatalf("day %d: delta %g out of [0,1]", day, c.Delta)
		}
		if day >= 2 && c.State == triclust.Warming {
			t.Fatalf("day %d: still warming after freeze + window fill", day)
		}
	}

	before := tp.ReadView()
	if _, err := tp.Process(100, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	after := tp.ReadView()
	if after.SkippedBatches() != before.SkippedBatches()+1 {
		t.Fatalf("skip counter %d, want %d", after.SkippedBatches(), before.SkippedBatches()+1)
	}
	ab, ar := after.StreamPos()
	bb, br := before.StreamPos()
	if ab != bb || ar != br {
		t.Fatalf("empty batch moved the fingerprint: (%d,%d) -> (%d,%d)", bb, br, ab, ar)
	}
	if ca, cb := after.Convergence(), before.Convergence(); ca != cb {
		t.Fatalf("empty batch changed convergence: %+v -> %+v", cb, ca)
	}
}

// TestReadViewRCUStress hammers the read plane under -race: reader
// goroutines load views (asserting per-reader monotone batch counters
// and epochs, and internally consistent views) while one writer
// processes batches and bumps the epoch, one exporter streams snapshots
// and one restorer round-trips snapshots and checks the restored view
// against the writer's record for the same stream position.
func TestReadViewRCUStress(t *testing.T) {
	d := demoCorpus(t, 29)
	const days = 24
	batches := dayBatches(d, days)
	tp, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		t.Fatalf("NewTopic: %v", err)
	}
	if _, err := tp.Process(0, batches[0]); err != nil {
		t.Fatalf("day 0: %v", err)
	}

	var (
		done     atomic.Bool
		mu       sync.Mutex
		recorded = map[int]triclust.ReadView{1: tp.ReadView()}
		fail     = make(chan string, 16)
	)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	var wg sync.WaitGroup

	// Writer: the remaining batches, bumping the epoch every few days.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for day := 1; day < days; day++ {
			if _, err := tp.Process(day, batches[day]); err != nil {
				report("writer day %d: %v", day, err)
				return
			}
			v := tp.ReadView()
			mu.Lock()
			recorded[v.Batches()] = v
			mu.Unlock()
			if day%5 == 0 {
				tp.SetEpoch(uint64(day))
			}
		}
	}()

	// Readers: monotone counters, internally consistent views.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastBatches, lastEpoch := -1, uint64(0)
			for !done.Load() {
				v := tp.ReadView()
				if v.Batches() < lastBatches {
					report("reader %d: batches went backwards: %d -> %d", r, lastBatches, v.Batches())
					return
				}
				if v.Epoch() < lastEpoch {
					report("reader %d: epoch went backwards: %d -> %d", r, lastEpoch, v.Epoch())
					return
				}
				lastBatches, lastEpoch = v.Batches(), v.Epoch()
				if v.Convergence().Batches != v.Batches() {
					report("reader %d: torn view: convergence batches %d vs %d", r, v.Convergence().Batches, v.Batches())
					return
				}
				known := 0
				for u := 0; u < v.Users(); u++ {
					if _, ok := v.UserEstimate(u); ok {
						known++
					}
				}
				if known != v.KnownUsers() {
					report("reader %d: torn view: %d known users enumerated, counter says %d", r, known, v.KnownUsers())
					return
				}
			}
		}(r)
	}

	// Exporter: snapshots must stream cleanly mid-ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if err := tp.Snapshot(io.Discard); err != nil {
				report("exporter: %v", err)
				return
			}
		}
	}()

	// Restorer: a snapshot restored mid-ingest must publish a view
	// bit-identical to the one the writer recorded at that position.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for !done.Load() {
			buf.Reset()
			if err := tp.Snapshot(&buf); err != nil {
				report("restorer snapshot: %v", err)
				return
			}
			r, err := triclust.Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				report("restorer restore: %v", err)
				return
			}
			rv := r.ReadView()
			mu.Lock()
			src, ok := recorded[rv.Batches()]
			mu.Unlock()
			if !ok {
				continue
			}
			sb, sr := src.StreamPos()
			gb, gr := rv.StreamPos()
			if sb != gb || sr != gr {
				report("restorer: fingerprint (%d,%d) vs recorded (%d,%d)", gb, gr, sb, sr)
				return
			}
			se, ge := viewEstimates(src), viewEstimates(rv)
			if len(se) != len(ge) {
				report("restorer: %d vs %d known users at batch %d", len(ge), len(se), gb)
				return
			}
			for u, want := range se {
				if got := ge[u]; got != want {
					report("restorer: user %d estimate %+v vs %+v at batch %d", u, got, want, gb)
					return
				}
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
