#!/usr/bin/env bash
# loadgen-smoke.sh — CI gate for the load harness itself: boot one
# persistent shard, drive a small mixed JSON+binary workload through
# cmd/loadgen at a modest open-loop rate, and require (a) zero
# non-2xx/304 responses (-strict) and (b) a schema-valid
# triclust-loadgen/v1 artifact (-validate). This catches regressions in
# the generator, the binary wire path, and the daemon's content
# negotiation without the cost of a full bench run.
#
# Usage:
#   scripts/loadgen-smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${1:-8591}
WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/triclustd" ./cmd/triclustd
go build -o "$WORK/loadgen" ./cmd/loadgen

"$WORK/triclustd" -addr "127.0.0.1:$PORT" -data-dir "$WORK/data" \
    >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 50); do
    curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null

# Closed-loop legs (both formats), then open-loop legs at a low fixed
# rate with reads and snapshots mixed in. -strict fails the script on
# any error response in any leg.
"$WORK/loadgen" -targets "http://127.0.0.1:$PORT" \
    -topics 2 -users 30 -tweets-per-batch 50 -batches 60 \
    -rate 0 -format both -topic-prefix smoke-closed \
    -out "$WORK/closed.json" -strict
"$WORK/loadgen" -targets "http://127.0.0.1:$PORT" \
    -topics 2 -users 30 -tweets-per-batch 50 -batches 60 \
    -rate 80 -format both -topic-prefix smoke-open \
    -out "$WORK/open.json" -strict

"$WORK/loadgen" -validate "$WORK/closed.json"
"$WORK/loadgen" -validate "$WORK/open.json"

echo "loadgen-smoke: OK"
