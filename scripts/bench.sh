#!/usr/bin/env bash
# bench.sh — run the performance-tracking benchmark suite and emit a
# machine-readable BENCH_PR10.json artifact, so the perf trajectory
# across PRs can be consumed from CI artifacts instead of hand-copied
# tables. Since PR 10 the artifact is an object: "benchmarks" holds the
# go-test microbenchmark rows (same shape as the PR-9 array), and
# "loadgen" embeds the cmd/loadgen JSON-vs-binary wire-format comparison
# measured against a real daemon over HTTP.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME         per-benchmark -benchtime for the library suite
#                     (default 10x)
#   DAEMON_BENCHTIME  -benchtime for the daemon persistence comparison
#                     (default 500x: the 500-batch stream of the PR-4
#                     acceptance criteria)
#   READ_BENCHTIME    -benchtime for the read-under-ingest comparison
#                     (default 2s: time-based, so the background ingest
#                     loop lands several full snapshot+fsync cycles in
#                     every measurement window)
#   CONFORM_BENCHTIME -benchtime for the conformance-scoring microbench
#                     (default 1000x: scoring one batch against a warm
#                     profile is nanoseconds, so it needs iterations)
#   LOADGEN_BATCHES   total batches per loadgen run (default 500: the
#                     same 500-batch daemon stream the persistence
#                     comparison tracks)
#   LOADGEN_TWEETS    tweets per batch (default 300)
#   LOADGEN_PORT      loopback port for the loadgen target daemon
#                     (default 8590)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR10.json}
BENCHTIME=${BENCHTIME:-10x}
DAEMON_BENCHTIME=${DAEMON_BENCHTIME:-500x}
READ_BENCHTIME=${READ_BENCHTIME:-2s}
CONFORM_BENCHTIME=${CONFORM_BENCHTIME:-1000x}
LOADGEN_BATCHES=${LOADGEN_BATCHES:-500}
LOADGEN_TWEETS=${LOADGEN_TWEETS:-300}
LOADGEN_PORT=${LOADGEN_PORT:-8590}

RAW=$(mktemp)
WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$RAW" "$WORK"
}
trap cleanup EXIT

LIB_BENCHES='BenchmarkProcessWarm|BenchmarkOnlineStep|BenchmarkOfflineFit|BenchmarkTable4TweetComparison|BenchmarkTable5UserComparison|BenchmarkTokenizePipeline|BenchmarkGraphBuild'

go test -run xxx -bench "$LIB_BENCHES" -benchtime "$BENCHTIME" -benchmem . | tee -a "$RAW"
# The daemon persistence bench runs at -cpu 1,4: the hot path (solver +
# journal fsync) follows GOMAXPROCS through the parallel kernels, so the
# artifact records the multi-core profile wherever the runner has cores
# (on a 1-CPU container both rows coincide) — the ROADMAP's open item on
# multi-core numbers reads them from here.
go test -run xxx -bench BenchmarkDaemonBatchPersist -benchtime "$DAEMON_BENCHTIME" -benchmem -cpu 1,4 ./cmd/triclustd/ | tee -a "$RAW"
# The read-plane comparison also runs at -cpu 1,4. On one core the gap is
# bounded by CPU sharing (readers and the writer time-slice either way);
# the RCU read path's headline property — reads do not queue behind a
# solve + snapshot fsync at all — only shows its full size when spare
# cores exist for the blocked readers to have run on, so the 4-core rows
# are the ones the ROADMAP trajectory tracks.
go test -run xxx -bench BenchmarkReadsUnderIngest -benchtime "$READ_BENCHTIME" -benchmem -cpu 1,4 ./cmd/triclustd/ | tee -a "$RAW"
# The conformance-gate microbench: scoring one batch observation against
# a warm profile. This cost sits on every ingest in every mode
# (accumulation never turns off), so the artifact tracks it per-PR; it
# must stay noise against the solve (the PR-8 bar caps warm Process
# overhead at 5%).
go test -run xxx -bench BenchmarkConformScore -benchtime "$CONFORM_BENCHTIME" -benchmem -cpu 1,4 ./internal/conform/ | tee -a "$RAW"

# ——— loadgen stage: the wire-format comparison over real HTTP ———
# A persistent single-shard daemon takes the same 500-batch stream in
# both wire formats: closed-loop legs measure ingest capacity per
# format, then -rate auto replays both formats open-loop at the JSON
# capacity, which is where the p99-at-equal-offered-load gap shows.
go build -o "$WORK/triclustd" ./cmd/triclustd
go build -o "$WORK/loadgen" ./cmd/loadgen
"$WORK/triclustd" -addr "127.0.0.1:$LOADGEN_PORT" -data-dir "$WORK/data" \
    >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 50); do
    curl -fsS "http://127.0.0.1:$LOADGEN_PORT/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
"$WORK/loadgen" -targets "http://127.0.0.1:$LOADGEN_PORT" \
    -topics 4 -users 60 -tweets-per-batch "$LOADGEN_TWEETS" \
    -batches "$LOADGEN_BATCHES" -rate auto -format both \
    -topic-prefix bench -out "$WORK/loadgen.json"
kill "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

awk -v out="$WORK/benchmarks.json" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    cpus = ""
    if (match(name, /-[0-9]+$/)) {
        cpus = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    iters = $2
    ns = ""; bytes = ""; allocs = ""; p99 = ""; max = ""; batches = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "p99-ns") p99 = $i
        if ($(i+1) == "max-ns") max = $i
        if ($(i+1) == "batches") batches = $i
    }
    rec = sprintf("  {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (cpus != "")    rec = rec sprintf(", \"cpus\": %s", cpus)
    if (ns != "")      rec = rec sprintf(", \"ns_per_op\": %s", ns)
    if (bytes != "")   rec = rec sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "")  rec = rec sprintf(", \"allocs_per_op\": %s", allocs)
    if (p99 != "")     rec = rec sprintf(", \"p99_ns\": %s", p99)
    if (max != "")     rec = rec sprintf(", \"max_ns\": %s", max)
    if (batches != "") rec = rec sprintf(", \"batches\": %s", batches)
    rec = rec "}"
    recs[n++] = rec
}
END {
    printf "[\n" > out
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n-1 ? "," : "") >> out
    printf "]\n" >> out
}
' "$RAW"

{
    printf '{\n"schema": "triclust-bench/v2",\n"benchmarks":\n'
    cat "$WORK/benchmarks.json"
    printf ',\n"loadgen":\n'
    cat "$WORK/loadgen.json"
    printf '}\n'
} > "$OUT"

echo "wrote $OUT ($(wc -c < "$OUT") bytes)"
