#!/usr/bin/env bash
# arch-boundaries-check.sh — keep the layering honest.
#
# The package graph encodes the architecture: core is the paper's
# solver (no knowledge of sessions or serving), engine orchestrates it,
# and conform is a freestanding statistics library that both the engine
# and the codec embed — it must never grow a dependency back into the
# layers that use it, or the "accumulate everywhere, enforce at the
# engine" design rots into a cycle. go list -deps makes these rules
# checkable, so a violating import fails CI with the offending edge
# instead of surviving until a refactor trips over it.
#
# Usage: scripts/arch-boundaries-check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
forbid() {
    local pkg=$1 pattern=$2 why=$3
    local hits
    hits=$(go list -deps "$pkg" | grep -E -x "$pattern" || true)
    if [ -n "$hits" ]; then
        echo "BOUNDARY: $pkg must not depend on: $(echo "$hits" | tr '\n' ' ')" >&2
        echo "          ($why)" >&2
        fail=1
    fi
}

# The solver core is below the engine; an upward import is a layering
# inversion.
forbid triclust/internal/core 'triclust/internal/engine' \
    "core is the paper's algorithm; engine orchestrates core, never the reverse"

# conform is a leaf statistics library: the engine scores with it and
# the codec serializes it, so a dependency on either (or on the daemon)
# would be a cycle through its own consumers.
forbid triclust/internal/conform 'triclust/internal/engine|triclust/cmd(/.*)?' \
    "conform is embedded by the engine and the codec; it cannot import its consumers"

# Stronger form of the same rule: conform depends on nothing else in
# this module at all (stdlib only), so it stays embeddable anywhere.
leaf_deps=$(go list -deps triclust/internal/conform | grep '^triclust' | grep -v -x 'triclust/internal/conform' || true)
if [ -n "$leaf_deps" ]; then
    echo "BOUNDARY: triclust/internal/conform must stay stdlib-only, but depends on: $(echo "$leaf_deps" | tr '\n' ' ')" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "arch-boundaries-check: FAILED" >&2
    exit 1
fi
echo "arch-boundaries-check: OK"
