#!/usr/bin/env bash
# error-codes-check.sh — keep the v1 API error-code registry honest.
#
# Every code<Name> = "literal" constant in cmd/triclustd/errors.go must
# be (a) documented in README.md and (b) exercised by at least one test
# (asserted via the constant identifier or the wire literal in some
# *_test.go). A code that is neither documented nor tested is a silent
# API surface; this check fails CI listing the misses.
#
# Usage: scripts/error-codes-check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ERRORS_GO=cmd/triclustd/errors.go
fail=0
total=0

while IFS=$'\t' read -r ident literal; do
    total=$((total + 1))
    if ! grep -qF "$literal" README.md; then
        echo "MISSING DOC:  $ident (\"$literal\") is not documented in README.md" >&2
        fail=1
    fi
    if ! grep -rqF --include='*_test.go' -e "$ident" -e "\"$literal\"" .; then
        echo "MISSING TEST: $ident (\"$literal\") is not exercised by any *_test.go" >&2
        fail=1
    fi
done < <(awk '
    /^[ \t]*code[A-Za-z0-9]+[ \t]*=[ \t]*"/ {
        ident = $1
        if (match($0, /"[^"]+"/)) {
            print ident "\t" substr($0, RSTART + 1, RLENGTH - 2)
        }
    }
' "$ERRORS_GO")

if [ "$total" -eq 0 ]; then
    echo "error-codes-check: extracted no codes from $ERRORS_GO — extraction regex is stale" >&2
    exit 1
fi

if [ "$fail" -ne 0 ]; then
    echo "error-codes-check: FAILED ($total codes checked)" >&2
    exit 1
fi
echo "error-codes-check: OK ($total codes documented and tested)"
