//go:build race

package triclust_test

const raceEnabled = true
