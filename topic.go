package triclust

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"triclust/internal/codec"
	"triclust/internal/conform"
	"triclust/internal/core"
	"triclust/internal/engine"
	"triclust/internal/mat"
	"triclust/internal/text"
)

// Feature weighting schemes, re-exported for option construction.
type Weighting = text.Weighting

const (
	// TF uses raw term counts.
	TF = text.TF
	// TFIDF uses smoothed tf·idf weighting (the paper's §5.1 choice).
	TFIDF = text.TFIDF
	// Binary uses 0/1 presence indicators.
	Binary = text.Binary
)

// TokenizerOptions control tweet normalization (re-exported from the text
// pipeline).
type TokenizerOptions = text.TokenizerOptions

// DefaultTokenizerOptions matches the paper's preprocessing: hashtags are
// first-class features, mentions dropped, stopwords removed.
func DefaultTokenizerOptions() TokenizerOptions {
	return text.DefaultTokenizerOptions()
}

// topicSettings is the option-assembly state behind NewTopic.
type topicSettings struct {
	cfg engine.Config
}

// Option configures a Topic at construction. Options are applied in
// order; the assembled configuration is validated once, after all options
// ran, so a later option may fix an earlier one.
type Option func(*topicSettings) error

// WithSolverConfig sets the full solver configuration (offline
// hyper-parameters plus the temporal ones). Zero-valued fields keep the
// paper's defaults. Offline-only callers can wrap a plain Config:
// WithSolverConfig(OnlineConfig{Config: cfg}).
func WithSolverConfig(cfg OnlineConfig) Option {
	return func(s *topicSettings) error {
		s.cfg.Online = cfg
		return nil
	}
}

// WithLexicon seeds the feature prior Sf0 from lex; nil selects the
// built-in polarity lexicon.
func WithLexicon(lex *Lexicon) Option {
	return func(s *topicSettings) error {
		s.cfg.Lexicon = lex
		return nil
	}
}

// WithLexiconHit sets the prior probability mass a listed word puts on
// its class (default 0.8; must lie in [1/k, 1]).
func WithLexiconHit(hit float64) Option {
	return func(s *topicSettings) error {
		s.cfg.LexiconHit = hit
		return nil
	}
}

// WithWeighting selects TF, TFIDF or Binary features (default TF-IDF).
func WithWeighting(w Weighting) Option {
	return func(s *topicSettings) error {
		s.cfg.Weighting = w
		return nil
	}
}

// WithMinDF prunes vocabulary words occurring in fewer documents than
// minDF when the vocabulary freezes (default 2).
func WithMinDF(minDF int) Option {
	return func(s *topicSettings) error {
		s.cfg.MinDF = minDF
		return nil
	}
}

// WithTokenizer sets the text-normalization options used for tweets
// whose Tokens field is nil.
func WithTokenizer(opts TokenizerOptions) Option {
	return func(s *topicSettings) error {
		s.cfg.Tokenizer = opts
		return nil
	}
}

// WithConformance tunes the stream-conformance profile every topic
// accumulates: when scoring starts (MinSamples) and where the flag and
// quarantine thresholds sit. Zero-valued fields keep the defaults. The
// thresholds are part of the topic's durable state (they travel inside
// snapshots); what a verdict does is the runtime conformance mode, set
// separately with SetConformanceMode.
func WithConformance(p ConformanceParams) Option {
	return func(s *topicSettings) error {
		s.cfg.Conform = p
		return nil
	}
}

// Stream-conformance types, re-exported from the conformance subsystem.
type (
	// ConformanceParams tune the conformance profile (see WithConformance).
	ConformanceParams = conform.Params
	// ConformanceMode selects what a quarantine verdict does on ingest.
	ConformanceMode = conform.Mode
	// ConformanceVerdict is the structured result of scoring one batch:
	// a status, per-invariant z-scores and the violated invariants.
	ConformanceVerdict = conform.Verdict
	// ConformanceScore is one invariant's z-score within a verdict.
	ConformanceScore = conform.Score
	// ConformanceStatus classifies a scored batch.
	ConformanceStatus = conform.Status
	// ConformanceReport summarizes a topic's learned stream profile.
	ConformanceReport = conform.Report
	// ConformanceError is the typed rejection of a nonconforming batch in
	// enforce mode. The batch was not applied: no state advanced, no
	// timestamp was consumed, and the profile is exactly as before.
	ConformanceError = conform.BatchError
)

// Conformance modes (see ConformanceMode).
const (
	// ConformOff scores and accumulates but surfaces nothing.
	ConformOff = conform.Off
	// ConformFlag annotates accepted batches with their verdict.
	ConformFlag = conform.Flag
	// ConformEnforce rejects quarantined batches before they are applied.
	ConformEnforce = conform.Enforce
)

// Conformance statuses (see ConformanceStatus).
const (
	Conforming  = conform.Conforming
	Flagged     = conform.Flagged
	Quarantined = conform.Quarantined
)

// ParseConformanceMode parses "off" (or ""), "flag" or "enforce".
func ParseConformanceMode(s string) (ConformanceMode, error) {
	return conform.ParseMode(s)
}

// defaultTopicSettings makes NewTopic default to the paper's TF-IDF
// weighting and tokenizer setup (the zero Weighting value is TF, which
// remains selectable explicitly via WithWeighting(TF); likewise a plain
// tokenizer via WithTokenizer(TokenizerOptions{})).
func defaultTopicSettings() topicSettings {
	return topicSettings{cfg: engine.Config{
		Weighting: text.TFIDF,
		Tokenizer: text.DefaultTokenizerOptions(),
	}}
}

// Topic is the first-class handle to one topic's sentiment analysis: a
// durable, versioned value unifying the offline and online algorithms.
//
// Lifecycle:
//
//	t, err := triclust.NewTopic(users, triclust.WithMinDF(1), ...)
//	t.WarmupVocabulary(texts...)   // optional: seed the vocabulary
//	t.Freeze()                     // optional: fix it before any batch
//	out, err := t.Process(day, batch)   // online steps (Algorithm 2), or
//	res, err := t.FitCorpus(corpus)     // a one-shot offline fit (Algorithm 1)
//	preds, err := t.Predict(texts)      // fold-in against the last factors
//
// The vocabulary freezes exactly once — explicitly via Freeze, or
// implicitly at the first processed batch / offline fit — because the
// online algorithm requires comparable Sf(t) matrices across snapshots.
//
// Topic.Snapshot serializes the complete state (vocabulary, prior, solver
// history, user history, random-stream position, configuration) into a
// versioned binary snapshot; Restore rebuilds a topic that continues the
// stream bit-identically (at a fixed kernel parallelism width). A Topic
// is safe for concurrent use; batch processing serializes internally.
type Topic struct {
	mu    sync.Mutex
	model *engine.Model
	sess  *engine.Session
	last  *core.Result // factors of the most recent solve, for Predict
	// epoch is the ownership epoch of sharded deployments (see Epoch). It
	// travels inside snapshots but never influences the solver.
	epoch uint64
	// view is the RCU read plane: an immutable results snapshot republished
	// with a single pointer swap after every committed batch (and on
	// restore and epoch changes). Readers load it without touching t.mu, so
	// an in-flight Process never stalls UserEstimate, FeatureSentiments or
	// ReadView; writers never wait for readers. Never nil after NewTopic.
	view atomic.Pointer[engine.View]
}

// NewTopic creates a topic over a fixed user universe (tweets in later
// batches refer to users by index into users; pass nil for offline-only
// use). The assembled configuration is validated: a negative MinDF, a
// class count the lexicon prior cannot seed (k ∉ {2, 3}), a non-positive
// temporal window, a decay outside (0,1] or an out-of-range lexicon hit
// mass are rejected with descriptive errors.
func NewTopic(users []User, opts ...Option) (*Topic, error) {
	s := defaultTopicSettings()
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("triclust: nil Option")
		}
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("triclust: invalid topic configuration: %w", err)
	}
	m := engine.NewModel(s.cfg)
	t := &Topic{model: m, sess: m.NewSession(users)}
	t.view.Store(t.sess.BuildView(nil, nil, 0))
	return t, nil
}

// publishView materializes and atomically publishes a fresh read view.
// Called under t.mu after any state change (batch, offline fit, restore),
// so views are published in commit order and each one pairs the solver
// history with the factors of the same batch.
func (t *Topic) publishView() {
	var sf *mat.Dense
	if t.last != nil {
		sf = t.last.Sf
	}
	t.view.Store(t.sess.BuildView(sf, t.view.Load(), t.epoch))
}

// Users returns the size of the topic's user universe.
func (t *Topic) Users() int { return t.sess.NumUsers() }

// Batches returns the number of non-empty batches processed.
func (t *Topic) Batches() int { return t.sess.Batches() }

// SkippedBatches returns the number of empty batches skipped.
func (t *Topic) SkippedBatches() int { return t.sess.Skipped() }

// KnownUsers returns the number of users with recorded history.
func (t *Topic) KnownUsers() int { return t.sess.KnownUsers() }

// LastTime returns the timestamp of the most recent non-empty batch, or
// ok = false before the first one. It survives Snapshot/Restore.
func (t *Topic) LastTime() (int, bool) { return t.sess.LastTime() }

// Vocabulary returns a copy of the frozen vocabulary in feature-index
// order, or nil before the freeze.
func (t *Topic) Vocabulary() []string {
	if v := t.model.Vocabulary(); v != nil {
		return v.Words()
	}
	return nil
}

// VocabSize returns the frozen vocabulary's size without copying it
// (0 before the freeze).
func (t *Topic) VocabSize() int {
	if v := t.model.Vocabulary(); v != nil {
		return v.Len()
	}
	return 0
}

// Frozen reports whether the vocabulary is fixed.
func (t *Topic) Frozen() bool { return t.model.Vocabulary() != nil }

// FeatureSentiments returns the labeled per-word sentiment rows of the
// most recent solve (nil before the first one). Rows follow the
// vocabulary's feature-index order. Unlike a caller-side cache of the
// last batch outcome, it survives Snapshot/Restore. It is served from
// the published read view — lock-free, labeled once per committed batch —
// so the returned slice is shared and must be treated as read-only.
func (t *Topic) FeatureSentiments() []Sentiment {
	return t.view.Load().Features
}

// WarmupVocabulary folds raw texts into the pre-freeze document-frequency
// counts, so the vocabulary can be seeded from historical or out-of-band
// data before the first batch fixes it. It errors once the vocabulary is
// frozen.
func (t *Topic) WarmupVocabulary(texts ...string) error {
	docs := make([][]string, len(texts))
	for i, s := range texts {
		docs[i] = t.model.Tokenizer().Tokenize(s)
	}
	return t.model.AccumulateVocabulary(docs)
}

// WarmupTokenized is WarmupVocabulary for pre-tokenized documents.
func (t *Topic) WarmupTokenized(docs [][]string) error {
	return t.model.AccumulateVocabulary(docs)
}

// Freeze fixes the vocabulary from the warm-up documents accumulated so
// far, without waiting for the first batch. It errors if the vocabulary
// is already frozen or the warm-up counts yield no words at MinDF.
func (t *Topic) Freeze() error { return t.model.FreezeNow() }

// Process runs one online step (Algorithm 2) on the batch of tweets with
// timestamp ts. Timestamps must strictly increase across non-empty
// batches. The first non-empty batch freezes the vocabulary unless Freeze
// already did; an empty batch returns a result with Skipped set and
// changes nothing.
func (t *Topic) Process(ts int, tweets []Tweet) (*StreamResult, error) {
	// t.mu is held across the solve (not just the t.last store) so a
	// concurrent Snapshot can never pair batch-N solver history with
	// batch-N−1 factors; lock order is always Topic.mu → Session.mu.
	t.mu.Lock()
	defer t.mu.Unlock()
	out, err := t.sess.Process(ts, tweets)
	if err != nil {
		return nil, err
	}
	if out.Res != nil {
		t.last = out.Res
	}
	if out.Skipped {
		// Nothing solved, nothing to re-materialize: carry the view over
		// with only the skip counter bumped.
		t.view.Store(t.view.Load().WithSkip())
	} else {
		t.publishView()
	}
	return &StreamResult{
		Result:      *resultFrom(out, t.model),
		ActiveUsers: out.Active,
		Skipped:     out.Skipped,
		Conformance: out.Conform,
	}, nil
}

// SetConformanceMode sets what a quarantine verdict does on this topic's
// ingest path: ConformOff (default) and ConformFlag accept every batch —
// flag mode additionally reports the verdict in StreamResult.Conformance —
// while ConformEnforce rejects quarantined batches with a
// *ConformanceError before any state advances. The mode is runtime-only:
// the profile accumulates and scores identically in every mode, so
// topics that differ only in mode produce byte-identical snapshots on a
// conforming stream, and switching modes never forks the stream.
func (t *Topic) SetConformanceMode(m ConformanceMode) {
	t.sess.SetConformMode(m)
}

// ConformanceMode returns the topic's conformance mode.
func (t *Topic) ConformanceMode() ConformanceMode {
	return t.sess.ConformMode()
}

// ConformanceReport summarizes the topic's learned stream profile —
// per-invariant distributions, verdict counters and the drift trend — as
// of the most recently committed batch. It is served from the published
// read view (lock-free); treat the report as read-only.
func (t *Topic) ConformanceReport() *ConformanceReport {
	return t.view.Load().Conform
}

// FitCorpus runs the offline tri-clustering algorithm (Algorithm 1) over
// a whole corpus in one shot, freezing the vocabulary from it when not
// already frozen. Offline and online use share the topic's vocabulary and
// prior, so a topic fitted offline can be warm-started for prediction.
func (t *Topic) FitCorpus(c *Corpus) (*Result, error) {
	if c == nil {
		return nil, errors.New("triclust: nil corpus")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out, err := t.model.FitCorpus(c)
	if err != nil {
		return nil, err
	}
	if out.Res != nil {
		t.last = out.Res
	}
	t.publishView()
	return resultFrom(out, t.model), nil
}

// Predict classifies new tweets against the most recent solve (offline
// fit or online step) by NMF fold-in, without running the solver.
// Out-of-vocabulary words are ignored.
func (t *Topic) Predict(texts []string) ([]Sentiment, error) {
	docs := make([][]string, len(texts))
	for i, s := range texts {
		docs[i] = t.model.Tokenizer().Tokenize(s)
	}
	return t.PredictTokenized(docs)
}

// PredictTokenized is Predict for pre-tokenized input.
func (t *Topic) PredictTokenized(docs [][]string) ([]Sentiment, error) {
	t.mu.Lock()
	last := t.last
	t.mu.Unlock()
	if last == nil {
		return nil, errors.New("triclust: topic has no fitted factors yet (run Process or FitCorpus first)")
	}
	return t.model.Predict(&last.Factors, docs)
}

// UserEstimate returns the most recent sentiment estimate for a user, or
// ok = false if the user has never appeared. It reads the published view,
// so it never blocks on an in-flight Process and always answers with the
// estimate of the most recently committed batch — exactly what a
// quiesced topic at the same batch counter would return.
func (t *Topic) UserEstimate(user int) (Sentiment, bool) {
	return t.view.Load().UserEstimate(user)
}

// Epoch returns the topic's ownership epoch. Epochs fence topic hand-offs
// in sharded deployments: a topic is created at epoch 0, every move to
// another shard increments the epoch, and the value rides inside the
// snapshot so a shard that gave a topic up can reject stale (pre-move)
// snapshots. The epoch never influences processing — two topics that
// differ only in epoch produce identical results and, epoch section
// aside, identical snapshots.
func (t *Topic) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// SetEpoch sets the topic's ownership epoch (see Epoch). It is called by
// sharding layers at hand-off time, immediately before exporting the
// snapshot installed on the receiving shard.
func (t *Topic) SetEpoch(e uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch = e
	// Republish so readers (and their cache validators, which embed the
	// epoch) see the ownership change without waiting for the next batch.
	t.view.Store(t.view.Load().WithEpoch(e))
}

// StreamPos returns the topic's replay fingerprint: the non-empty batch
// count and the solver's position in its replayable random stream. Two
// topics that processed the same batches report the same position, so a
// batch journal records it to verify that crash-recovery replay
// reproduced the original run exactly.
func (t *Topic) StreamPos() (batches int, randDraws uint64) {
	return t.sess.Progress()
}

// Snapshot serializes the topic's complete state — configuration,
// lexicon, vocabulary, Sf0 prior, solver factors and history, user
// history and random-stream position — as a self-describing, versioned
// binary snapshot. A topic restored from it continues the stream
// bit-identically (at a fixed kernel parallelism width). Equal states
// produce byte-identical snapshots.
func (t *Topic) Snapshot(w io.Writer) error {
	st := func() *engine.State {
		t.mu.Lock()
		defer t.mu.Unlock()
		st := t.sess.ExportState()
		if t.last != nil {
			st.LastFactors = &t.last.Factors
		}
		st.Epoch = t.epoch
		return st
	}()
	// Encoding streams to w outside the lock so a slow writer — e.g. a
	// stalled snapshot download — cannot block Process or FitCorpus. This
	// is safe: st is a deep copy, and t.last's factors are replaced, never
	// mutated, once a solve publishes them.
	return codec.Encode(w, st)
}

// ConvergenceState classifies how settled a read view's estimates are:
// "warming" (vocabulary not frozen or the temporal window not yet full),
// "converging" (estimates still moving by more than the steady
// threshold between batches) or "steady".
type ConvergenceState = engine.ViewState

// Convergence states, re-exported from the engine.
const (
	Warming    = engine.ViewWarming
	Converging = engine.ViewConverging
	Steady     = engine.ViewSteady
)

// Convergence is a read view's progress indicator: an answer served
// mid-stream comes with how many batches produced it and how much the
// last batch moved it, so clients can use an immediate estimate without
// mistaking a warm-up answer for a settled one.
type Convergence struct {
	// State is the classification (see ConvergenceState).
	State ConvergenceState
	// Batches is the number of non-empty batches behind the estimates.
	Batches int
	// Delta is the mean absolute per-entry movement of the user estimates
	// versus the previous view (1 when there was nothing to compare).
	Delta float64
}

// ReadView is an immutable, lock-free snapshot of a topic's queryable
// results, published atomically after every committed batch (RCU style):
// loading one never blocks on an in-flight Process, and two reads
// through the same view are guaranteed mutually consistent. The zero
// ReadView is invalid; obtain one from Topic.ReadView.
type ReadView struct {
	v *engine.View
}

// ReadView returns the topic's current read view. The call is a single
// atomic pointer load — safe and non-blocking from any goroutine,
// including while a batch, snapshot export or restore is in flight.
func (t *Topic) ReadView() ReadView { return ReadView{v: t.view.Load()} }

// Batches returns the number of non-empty batches behind the view.
func (rv ReadView) Batches() int { return rv.v.Batches }

// SkippedBatches returns the number of empty batches skipped.
func (rv ReadView) SkippedBatches() int { return rv.v.Skips }

// StreamPos returns the view's stream fingerprint: the batch counter and
// the solver's random-stream position at publication. Views with equal
// fingerprints carry bit-identical estimates, on any replica, after any
// restore or replay — which makes the fingerprint a correct strong cache
// validator (triclustd derives its ETags from it).
func (rv ReadView) StreamPos() (batches int, randDraws uint64) {
	return rv.v.Batches, rv.v.RandDraws
}

// Epoch returns the ownership epoch the view was published under.
func (rv ReadView) Epoch() uint64 { return rv.v.Epoch }

// LastTime returns the timestamp of the most recent non-empty batch, or
// ok = false before the first one.
func (rv ReadView) LastTime() (int, bool) { return rv.v.LastTime, rv.v.HasTime }

// KnownUsers returns the number of users with recorded history.
func (rv ReadView) KnownUsers() int { return rv.v.KnownUsers }

// Users returns the size of the topic's user universe.
func (rv ReadView) Users() int { return rv.v.NumUsers }

// VocabSize returns the frozen vocabulary's size (0 before the freeze).
func (rv ReadView) VocabSize() int { return rv.v.VocabSize }

// Frozen reports whether the vocabulary was fixed at publication.
func (rv ReadView) Frozen() bool { return rv.v.Frozen }

// UserEstimate returns the view's sentiment estimate for a user, or
// ok = false if the user had no history when the view was published.
func (rv ReadView) UserEstimate(user int) (Sentiment, bool) {
	return rv.v.UserEstimate(user)
}

// FeatureSentiments returns the labeled per-word sentiments of the most
// recent solve (nil before the first one), in vocabulary feature-index
// order. The slice is shared with the view: treat it as read-only.
func (rv ReadView) FeatureSentiments() []Sentiment { return rv.v.Features }

// Convergence returns the view's progress indicator.
func (rv ReadView) Convergence() Convergence {
	return Convergence{State: rv.v.State, Batches: rv.v.Batches, Delta: rv.v.Delta}
}

// ConformanceReport returns the stream-conformance summary the view was
// published with (see Topic.ConformanceReport). The report is shared
// with the view: treat it as read-only.
func (rv ReadView) ConformanceReport() *ConformanceReport {
	return rv.v.Conform
}

// Restore rebuilds a Topic from a snapshot written by Topic.Snapshot. The
// snapshot's checksum, magic and format version are verified before any
// state is applied; a truncated or corrupted snapshot is rejected whole.
func Restore(r io.Reader) (*Topic, error) {
	st, err := codec.Decode(r)
	if err != nil {
		return nil, err
	}
	sess, err := engine.RestoreSession(st)
	if err != nil {
		return nil, err
	}
	t := &Topic{model: sess.Model(), sess: sess, epoch: st.Epoch}
	if st.LastFactors != nil {
		t.last = &core.Result{Factors: *st.LastFactors}
	}
	// A restored topic serves reads immediately: publish its view before
	// the handle escapes, so journal replay and replica promotion answer
	// progressive estimates while they catch the stream up.
	t.publishView()
	return t, nil
}
