// Package triclust is a Go implementation of "Tripartite Graph Clustering
// for Dynamic Sentiment Analysis on Social Media" (Zhu, Galstyan, Cheng,
// Lerman; SIGMOD 2014). It jointly infers tweet-level and user-level
// sentiment by co-clustering the tripartite graph of features, tweets and
// users via non-negative matrix tri-factorization, with lexicon and
// user-graph regularization (offline) and temporal regularization over a
// stream of snapshots (online).
//
// # Quick start
//
//	corpus := &triclust.Corpus{ ... tweets, users ... }
//	res, err := triclust.Fit(corpus, triclust.DefaultOptions())
//	if err != nil { ... }
//	for i, s := range res.TweetSentiments { ... s.Class, s.Confidence ... }
//
// For streaming data, create a Stream and feed it one batch per timestamp:
//
//	st, _ := triclust.NewStream(triclust.DefaultStreamOptions())
//	out, err := st.Process(day, batchCorpus)
//
// The heavy lifting lives in internal/core (the paper's Algorithms 1
// and 2); this package wires tokenization, graph construction, lexicon
// priors and class labeling around it.
package triclust

import (
	"errors"
	"fmt"

	"triclust/internal/core"
	"triclust/internal/lexicon"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// Re-exported data-model types. See the corresponding internal packages
// for details.
type (
	// Corpus is a collection of tweets and users about one topic.
	Corpus = tgraph.Corpus
	// Tweet is one post: text or tokens, author, timestamp, optional
	// retweet target and ground-truth label.
	Tweet = tgraph.Tweet
	// User carries user metadata and an optional ground-truth label.
	User = tgraph.User
	// Config holds the offline hyper-parameters (k, α, β, iterations,
	// §7 extension regularizers).
	Config = core.Config
	// OnlineConfig adds the temporal parameters (γ, τ, window).
	OnlineConfig = core.OnlineConfig
	// Lexicon is a sentiment word list seeding the feature prior Sf0.
	Lexicon = lexicon.Lexicon
)

// NoLabel marks an unlabeled tweet or user.
const NoLabel = tgraph.NoLabel

// Sentiment classes. Cluster j is aligned with class j through the
// lexicon prior (emotion consistency, Eq. 5).
const (
	Pos = lexicon.Pos
	Neg = lexicon.Neg
	Neu = lexicon.Neu
)

// ClassName returns "positive" / "negative" / "neutral".
func ClassName(c int) string {
	switch c {
	case Pos:
		return "positive"
	case Neg:
		return "negative"
	case Neu:
		return "neutral"
	default:
		return fmt.Sprintf("class%d", c)
	}
}

// Sentiment is one item's inferred class with its soft membership.
type Sentiment struct {
	// Class is the argmax cluster (aligned to Pos/Neg/Neu when a lexicon
	// prior is used).
	Class int
	// Confidence is the normalized membership weight of Class in [0,1].
	Confidence float64
}

// Options configure Fit.
type Options struct {
	// Config is the solver configuration (DefaultConfig of the paper's
	// §5.1 when zero-valued fields are left alone).
	Config Config
	// Lexicon seeds the feature prior; nil uses the built-in polarity
	// lexicon.
	Lexicon *Lexicon
	// LexiconHit is the prior probability mass a listed word puts on its
	// class (default 0.8).
	LexiconHit float64
	// Weighting selects TF / TF-IDF / binary features (default TF-IDF).
	Weighting text.Weighting
	// MinDF prunes vocabulary words occurring in fewer tweets
	// (default 2).
	MinDF int
	// Tokenizer controls text normalization for tweets whose Tokens
	// field is nil.
	Tokenizer text.TokenizerOptions
}

// DefaultOptions returns the paper's offline configuration.
func DefaultOptions() Options {
	return Options{
		Config:     core.DefaultConfig(),
		LexiconHit: 0.8,
		Weighting:  text.TFIDF,
		MinDF:      2,
		Tokenizer:  text.DefaultTokenizerOptions(),
	}
}

// Result is the outcome of an offline Fit or one Stream step.
type Result struct {
	// TweetSentiments and UserSentiments follow the input ordering.
	TweetSentiments []Sentiment
	UserSentiments  []Sentiment
	// Vocabulary maps feature indices to words; FeatureSentiments
	// follows it.
	Vocabulary        []string
	FeatureSentiments []Sentiment
	// Iterations and Converged describe the solver run.
	Iterations int
	Converged  bool
	// Raw exposes the factor matrices and loss history for analysis.
	Raw *core.Result

	vocab     *text.Vocabulary
	weighting text.Weighting
	tokenizer *text.Tokenizer
}

// PredictTweets classifies new tweets against the fitted model without
// re-running the solver (NMF fold-in: the tweets' feature rows are
// projected onto the learned feature space Sf·Hpᵀ). Out-of-vocabulary
// words are ignored; a tweet with no known words gets a uniform-confidence
// neutral-ish result.
func (r *Result) PredictTweets(texts []string) ([]Sentiment, error) {
	docs := make([][]string, len(texts))
	for i, s := range texts {
		docs[i] = r.tokenizer.Tokenize(s)
	}
	return r.PredictTokenized(docs)
}

// PredictTokenized is PredictTweets for pre-tokenized input.
func (r *Result) PredictTokenized(docs [][]string) ([]Sentiment, error) {
	xp := text.DocFeatureMatrix(docs, r.vocab, r.weighting)
	sp, err := core.FoldInTweets(&r.Raw.Factors, xp)
	if err != nil {
		return nil, err
	}
	return sentimentsFromFactor(sp.Rows(), sp), nil
}

func sentimentsFromFactor(rows int, raw interface {
	Row(int) []float64
	Cols() int
}) []Sentiment {
	out := make([]Sentiment, rows)
	for i := 0; i < rows; i++ {
		row := raw.Row(i)
		var sum, best float64
		cls := 0
		for j, v := range row {
			sum += v
			if v > best {
				best, cls = v, j
			}
		}
		conf := 0.0
		if sum > 0 {
			conf = best / sum
		} else if raw.Cols() > 0 {
			conf = 1 / float64(raw.Cols())
		}
		out[i] = Sentiment{Class: cls, Confidence: conf}
	}
	return out
}

func resultFrom(res *core.Result, vocab *text.Vocabulary, weighting text.Weighting, tok *text.Tokenizer) *Result {
	return &Result{
		TweetSentiments:   sentimentsFromFactor(res.Sp.Rows(), res.Sp),
		UserSentiments:    sentimentsFromFactor(res.Su.Rows(), res.Su),
		Vocabulary:        vocab.Words(),
		FeatureSentiments: sentimentsFromFactor(res.Sf.Rows(), res.Sf),
		Iterations:        res.Iterations,
		Converged:         res.Converged,
		Raw:               res,
		vocab:             vocab,
		weighting:         weighting,
		tokenizer:         tok,
	}
}

// Fit runs the offline tri-clustering algorithm (Algorithm 1) on a corpus
// and returns tweet-, user- and feature-level sentiments.
func Fit(c *Corpus, o Options) (*Result, error) {
	if c == nil {
		return nil, errors.New("triclust: nil corpus")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	o = fillOptions(o)
	c.Tokenize(text.NewTokenizer(o.Tokenizer))
	g := tgraph.Build(c, tgraph.BuildOptions{Weighting: o.Weighting, MinDF: o.MinDF})
	p := &core.Problem{
		Xp:  g.Xp,
		Xu:  g.Xu,
		Xr:  g.Xr,
		Gu:  g.Gu,
		Sf0: o.Lexicon.Sf0(g.Vocab, o.Config.K, o.LexiconHit),
	}
	res, err := core.FitOffline(p, o.Config)
	if err != nil {
		return nil, err
	}
	return resultFrom(res, g.Vocab, o.Weighting, text.NewTokenizer(o.Tokenizer)), nil
}

func fillOptions(o Options) Options {
	if o.Lexicon == nil {
		o.Lexicon = lexicon.Builtin()
	}
	if o.LexiconHit == 0 {
		o.LexiconHit = 0.8
	}
	if o.MinDF == 0 {
		o.MinDF = 2
	}
	if o.Config.K == 0 {
		o.Config = core.DefaultConfig()
	}
	return o
}

// StreamOptions configure a Stream.
type StreamOptions struct {
	// Config is the online solver configuration (paper defaults: α=τ=0.9,
	// β=0.8, γ=0.2, w=2).
	Config OnlineConfig
	// Lexicon, LexiconHit, Weighting, Tokenizer as in Options.
	Lexicon    *Lexicon
	LexiconHit float64
	Weighting  text.Weighting
	Tokenizer  text.TokenizerOptions
	// MinDF prunes the vocabulary built from the first batch. The
	// vocabulary is then frozen: later out-of-vocabulary words are
	// ignored (the online algorithm requires comparable Sf(t) matrices;
	// the paper likewise fixes the feature space per topic).
	MinDF int
}

// DefaultStreamOptions returns the paper's online configuration.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{
		Config:     core.DefaultOnlineConfig(),
		LexiconHit: 0.8,
		Weighting:  text.TFIDF,
		MinDF:      2,
		Tokenizer:  text.DefaultTokenizerOptions(),
	}
}

// StreamResult extends Result with the mapping from batch rows to the
// caller's user identifiers.
type StreamResult struct {
	Result
	// ActiveUsers[i] is the global user index of UserSentiments[i].
	ActiveUsers []int
}

// Stream is the stateful online analyzer (Algorithm 2). It tracks user
// history across batches; users are identified by their index in the
// universe passed to NewStream.
type Stream struct {
	opts   StreamOptions
	online *core.Online
	vocab  *text.Vocabulary
	users  []User
	tok    *text.Tokenizer
}

// NewStream creates a stream over a fixed user universe (tweets in later
// batches refer to users by index into users).
func NewStream(users []User, opts StreamOptions) (*Stream, error) {
	if opts.Lexicon == nil {
		opts.Lexicon = lexicon.Builtin()
	}
	if opts.LexiconHit == 0 {
		opts.LexiconHit = 0.8
	}
	if opts.MinDF == 0 {
		opts.MinDF = 2
	}
	if opts.Config.K == 0 {
		opts.Config = core.DefaultOnlineConfig()
	}
	return &Stream{
		opts:   opts,
		online: core.NewOnline(opts.Config),
		users:  users,
		tok:    text.NewTokenizer(opts.Tokenizer),
	}, nil
}

// Process runs one online step on the batch of tweets with timestamp t.
// Timestamps must strictly increase across calls. The first batch fixes
// the vocabulary.
func (s *Stream) Process(t int, tweets []Tweet) (*StreamResult, error) {
	batch := &Corpus{Users: s.users, Tweets: tweets}
	if err := batch.Validate(); err != nil {
		return nil, err
	}
	batch.Tokenize(s.tok)
	if s.vocab == nil {
		s.vocab = text.BuildVocabulary(batch.TokenDocs(), s.opts.MinDF)
	}
	snap := tgraph.BuildSnapshot(batch, minTime(tweets), maxTime(tweets)+1, s.vocab, s.opts.Weighting)
	p := &core.Problem{
		Xp:  snap.Graph.Xp,
		Xu:  snap.Graph.Xu,
		Xr:  snap.Graph.Xr,
		Gu:  snap.Graph.Gu,
		Sf0: s.opts.Lexicon.Sf0(s.vocab, s.opts.Config.K, s.opts.LexiconHit),
	}
	res, err := s.online.Step(t, p, snap.Active)
	if err != nil {
		return nil, err
	}
	out := &StreamResult{Result: *resultFrom(res, s.vocab, s.opts.Weighting, s.tok), ActiveUsers: snap.Active}
	return out, nil
}

// UserEstimate returns the most recent sentiment estimate for a user, or
// ok=false if the user has never appeared.
func (s *Stream) UserEstimate(user int) (Sentiment, bool) {
	row := s.online.LastUserEstimate(user)
	if row == nil {
		return Sentiment{}, false
	}
	var sum, best float64
	cls := 0
	for j, v := range row {
		sum += v
		if v > best {
			best, cls = v, j
		}
	}
	conf := 0.0
	if sum > 0 {
		conf = best / sum
	}
	return Sentiment{Class: cls, Confidence: conf}, true
}

func minTime(tweets []Tweet) int {
	if len(tweets) == 0 {
		return 0
	}
	lo := tweets[0].Time
	for _, tw := range tweets[1:] {
		if tw.Time < lo {
			lo = tw.Time
		}
	}
	return lo
}

func maxTime(tweets []Tweet) int {
	if len(tweets) == 0 {
		return 0
	}
	hi := tweets[0].Time
	for _, tw := range tweets[1:] {
		if tw.Time > hi {
			hi = tw.Time
		}
	}
	return hi
}

// BuiltinLexicon returns the general-purpose polarity lexicon.
func BuiltinLexicon() *Lexicon { return lexicon.Builtin() }

// InduceLexicon rebuilds a topic lexicon from labeled documents (see
// internal/lexicon.Induce).
func InduceLexicon(docs [][]string, labels []int, minCount int, ratio float64) *Lexicon {
	return lexicon.Induce(docs, labels, minCount, ratio)
}
