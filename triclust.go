// Package triclust is a Go implementation of "Tripartite Graph Clustering
// for Dynamic Sentiment Analysis on Social Media" (Zhu, Galstyan, Cheng,
// Lerman; SIGMOD 2014). It jointly infers tweet-level and user-level
// sentiment by co-clustering the tripartite graph of features, tweets and
// users via non-negative matrix tri-factorization, with lexicon and
// user-graph regularization (offline) and temporal regularization over a
// stream of snapshots (online).
//
// # Quick start
//
//	corpus := &triclust.Corpus{ ... tweets, users ... }
//	res, err := triclust.Fit(corpus, triclust.DefaultOptions())
//	if err != nil { ... }
//	for i, s := range res.TweetSentiments { ... s.Class, s.Confidence ... }
//
// For streaming data, create a Stream and feed it one batch per timestamp:
//
//	st, _ := triclust.NewStream(users, triclust.DefaultStreamOptions())
//	out, err := st.Process(day, batchCorpus)
//
// # Architecture
//
// Fit and Stream are thin adapters over internal/engine, which decomposes
// the pipeline into explicit stages — tokenize → vocabulary → graph build
// → lexicon prior → solve → label — around two long-lived types:
// engine.Model holds the frozen per-topic artifacts (tokenizer,
// vocabulary, cached Sf0 prior, configuration) and engine.Session the
// per-topic mutable state (the Algorithm-2 solver with its user history
// plus reusable problem scaffolding, so steady-state batches allocate
// nothing for the prior or the problem skeleton). The numerical heavy
// lifting lives in internal/core (the paper's Algorithms 1 and 2) on the
// parallel kernels of internal/mat and internal/sparse. cmd/triclustd
// serves many concurrent topic sessions over HTTP on the same engine.
package triclust

import (
	"errors"
	"fmt"

	"triclust/internal/core"
	"triclust/internal/engine"
	"triclust/internal/lexicon"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// Re-exported data-model types. See the corresponding internal packages
// for details.
type (
	// Corpus is a collection of tweets and users about one topic.
	Corpus = tgraph.Corpus
	// Tweet is one post: text or tokens, author, timestamp, optional
	// retweet target and ground-truth label.
	Tweet = tgraph.Tweet
	// User carries user metadata and an optional ground-truth label.
	User = tgraph.User
	// Config holds the offline hyper-parameters (k, α, β, iterations,
	// §7 extension regularizers).
	Config = core.Config
	// OnlineConfig adds the temporal parameters (γ, τ, window).
	OnlineConfig = core.OnlineConfig
	// Lexicon is a sentiment word list seeding the feature prior Sf0.
	Lexicon = lexicon.Lexicon
	// Sentiment is one item's inferred class with its soft membership,
	// the output of the engine's labeling stage.
	Sentiment = engine.Sentiment
)

// NoLabel marks an unlabeled tweet or user.
const NoLabel = tgraph.NoLabel

// Sentiment classes. Cluster j is aligned with class j through the
// lexicon prior (emotion consistency, Eq. 5).
const (
	Pos = lexicon.Pos
	Neg = lexicon.Neg
	Neu = lexicon.Neu
)

// ClassName returns "positive" / "negative" / "neutral".
func ClassName(c int) string {
	switch c {
	case Pos:
		return "positive"
	case Neg:
		return "negative"
	case Neu:
		return "neutral"
	default:
		return fmt.Sprintf("class%d", c)
	}
}

// Options configure Fit.
type Options struct {
	// Config is the solver configuration (DefaultConfig of the paper's
	// §5.1 when zero-valued fields are left alone).
	Config Config
	// Lexicon seeds the feature prior; nil uses the built-in polarity
	// lexicon.
	Lexicon *Lexicon
	// LexiconHit is the prior probability mass a listed word puts on its
	// class (default 0.8).
	LexiconHit float64
	// Weighting selects TF / TF-IDF / binary features (default TF-IDF).
	Weighting text.Weighting
	// MinDF prunes vocabulary words occurring in fewer tweets
	// (default 2).
	MinDF int
	// Tokenizer controls text normalization for tweets whose Tokens
	// field is nil.
	Tokenizer text.TokenizerOptions
}

// DefaultOptions returns the paper's offline configuration.
func DefaultOptions() Options {
	return Options{
		Config:     core.DefaultConfig(),
		LexiconHit: 0.8,
		Weighting:  text.TFIDF,
		MinDF:      2,
		Tokenizer:  text.DefaultTokenizerOptions(),
	}
}

// Result is the outcome of an offline Fit or one Stream step.
type Result struct {
	// TweetSentiments and UserSentiments follow the input ordering.
	TweetSentiments []Sentiment
	UserSentiments  []Sentiment
	// Vocabulary maps feature indices to words; FeatureSentiments
	// follows it.
	Vocabulary        []string
	FeatureSentiments []Sentiment
	// Iterations and Converged describe the solver run.
	Iterations int
	Converged  bool
	// Raw exposes the factor matrices and loss history for analysis.
	Raw *core.Result

	model *engine.Model
}

// PredictTweets classifies new tweets against the fitted model without
// re-running the solver (NMF fold-in: the tweets' feature rows are
// projected onto the learned feature space Sf·Hpᵀ). Out-of-vocabulary
// words are ignored; a tweet with no known words gets a uniform-confidence
// neutral-ish result.
func (r *Result) PredictTweets(texts []string) ([]Sentiment, error) {
	docs := make([][]string, len(texts))
	for i, s := range texts {
		docs[i] = r.model.Tokenizer().Tokenize(s)
	}
	return r.PredictTokenized(docs)
}

// PredictTokenized is PredictTweets for pre-tokenized input.
func (r *Result) PredictTokenized(docs [][]string) ([]Sentiment, error) {
	if r.model == nil || r.Raw == nil {
		return nil, errors.New("triclust: result carries no model")
	}
	return r.model.Predict(&r.Raw.Factors, docs)
}

// resultFrom adapts an engine outcome to the public Result shape.
func resultFrom(out *engine.Outcome, m *engine.Model) *Result {
	r := &Result{
		TweetSentiments:   out.TweetSentiments,
		UserSentiments:    out.UserSentiments,
		FeatureSentiments: out.FeatureSentiments,
		model:             m,
	}
	if v := m.Vocabulary(); v != nil {
		r.Vocabulary = v.Words()
	}
	if out.Res != nil {
		r.Iterations = out.Res.Iterations
		r.Converged = out.Res.Converged
		r.Raw = out.Res
	}
	return r
}

// engineConfig translates the public option sets to an engine.Config.
func engineConfig(cfg core.OnlineConfig, lex *Lexicon, hit float64, w text.Weighting, minDF int, tok text.TokenizerOptions) engine.Config {
	return engine.Config{
		Online:     cfg,
		Lexicon:    lex,
		LexiconHit: hit,
		Weighting:  w,
		MinDF:      minDF,
		Tokenizer:  tok,
	}
}

// Fit runs the offline tri-clustering algorithm (Algorithm 1) on a corpus
// and returns tweet-, user- and feature-level sentiments. It is a one-shot
// adapter over the engine pipeline: a fresh engine.Model is built, its
// vocabulary frozen from this corpus, and every stage runs once.
func Fit(c *Corpus, o Options) (*Result, error) {
	if c == nil {
		return nil, errors.New("triclust: nil corpus")
	}
	// An unconfigured solver selects the paper's *offline* setup (the
	// engine's own fallback is the online one); every other default
	// lives in engine.NewModel.
	if o.Config.K == 0 {
		o.Config = core.DefaultConfig()
	}
	m := engine.NewModel(engineConfig(
		core.OnlineConfig{Config: o.Config}, o.Lexicon, o.LexiconHit,
		o.Weighting, o.MinDF, o.Tokenizer))
	out, err := m.FitCorpus(c)
	if err != nil {
		return nil, err
	}
	return resultFrom(out, m), nil
}

// StreamOptions configure a Stream.
type StreamOptions struct {
	// Config is the online solver configuration (paper defaults: α=τ=0.9,
	// β=0.8, γ=0.2, w=2).
	Config OnlineConfig
	// Lexicon, LexiconHit, Weighting, Tokenizer as in Options.
	Lexicon    *Lexicon
	LexiconHit float64
	Weighting  text.Weighting
	Tokenizer  text.TokenizerOptions
	// MinDF prunes the vocabulary built from the first batch. The
	// vocabulary is then frozen: later out-of-vocabulary words are
	// ignored (the online algorithm requires comparable Sf(t) matrices;
	// the paper likewise fixes the feature space per topic).
	MinDF int
}

// DefaultStreamOptions returns the paper's online configuration.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{
		Config:     core.DefaultOnlineConfig(),
		LexiconHit: 0.8,
		Weighting:  text.TFIDF,
		MinDF:      2,
		Tokenizer:  text.DefaultTokenizerOptions(),
	}
}

// StreamResult extends Result with the mapping from batch rows to the
// caller's user identifiers.
type StreamResult struct {
	Result
	// ActiveUsers[i] is the global user index of UserSentiments[i].
	ActiveUsers []int
	// Skipped reports that the batch was empty and the step was a
	// well-defined no-op: no solver ran, the vocabulary was not frozen,
	// the timestamp was not consumed and user history is untouched.
	Skipped bool
}

// Stream is the stateful online analyzer (Algorithm 2). It tracks user
// history across batches; users are identified by their index in the
// universe passed to NewStream. Stream is an adapter over one
// engine.Session; batch results are independent of tweet ordering within
// the batch (tweets are canonicalized before the solver runs).
type Stream struct {
	model *engine.Model
	sess  *engine.Session
}

// NewStream creates a stream over a fixed user universe (tweets in later
// batches refer to users by index into users).
func NewStream(users []User, opts StreamOptions) (*Stream, error) {
	// All defaulting (lexicon, hit mass, MinDF, solver config) happens
	// in engine.NewModel.
	m := engine.NewModel(engineConfig(
		opts.Config, opts.Lexicon, opts.LexiconHit,
		opts.Weighting, opts.MinDF, opts.Tokenizer))
	return &Stream{model: m, sess: m.NewSession(users)}, nil
}

// Process runs one online step on the batch of tweets with timestamp t.
// Timestamps must strictly increase across non-empty batches. The first
// non-empty batch fixes the vocabulary; an empty batch returns a result
// with Skipped set and changes nothing.
func (s *Stream) Process(t int, tweets []Tweet) (*StreamResult, error) {
	out, err := s.sess.Process(t, tweets)
	if err != nil {
		return nil, err
	}
	return &StreamResult{
		Result:      *resultFrom(out, s.model),
		ActiveUsers: out.Active,
		Skipped:     out.Skipped,
	}, nil
}

// UserEstimate returns the most recent sentiment estimate for a user, or
// ok=false if the user has never appeared.
func (s *Stream) UserEstimate(user int) (Sentiment, bool) {
	return s.sess.UserEstimate(user)
}

// BuiltinLexicon returns the general-purpose polarity lexicon.
func BuiltinLexicon() *Lexicon { return lexicon.Builtin() }

// InduceLexicon rebuilds a topic lexicon from labeled documents (see
// internal/lexicon.Induce).
func InduceLexicon(docs [][]string, labels []int, minCount int, ratio float64) *Lexicon {
	return lexicon.Induce(docs, labels, minCount, ratio)
}
