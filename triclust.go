// Package triclust is a Go implementation of "Tripartite Graph Clustering
// for Dynamic Sentiment Analysis on Social Media" (Zhu, Galstyan, Cheng,
// Lerman; SIGMOD 2014). It jointly infers tweet-level and user-level
// sentiment by co-clustering the tripartite graph of features, tweets and
// users via non-negative matrix tri-factorization, with lexicon and
// user-graph regularization (offline) and temporal regularization over a
// stream of snapshots (online).
//
// # The Topic lifecycle
//
// The unit of work is a Topic: a durable, versioned value holding one
// topic's complete analysis state — configuration, vocabulary, lexicon
// prior, solver factors and per-user history. Both the paper's algorithms
// run against the same Topic:
//
//	t, _ := triclust.NewTopic(users,
//		triclust.WithMinDF(2),
//		triclust.WithSolverConfig(triclust.OnlineConfig{}))
//
//	t.WarmupVocabulary(historicalTexts...) // optional vocabulary seeding
//	t.Freeze()                             // optional explicit freeze
//
//	out, _ := t.Process(day, batch) // online steps (Algorithm 2)
//	res, _ := t.FitCorpus(corpus)   // or a one-shot offline fit (Algorithm 1)
//	preds, _ := t.Predict(texts)    // fold-in against the last factors
//
// The vocabulary freezes exactly once — explicitly via Freeze, or
// implicitly at the first processed batch or offline fit — because the
// online algorithm requires comparable Sf(t) matrices across snapshots.
//
// # Durable snapshots
//
// Topic.Snapshot serializes the full state into a self-describing,
// versioned binary snapshot; Restore rebuilds a topic that continues the
// stream bit-identically (at a fixed kernel parallelism width):
//
//	var buf bytes.Buffer
//	_ = t.Snapshot(&buf)
//	t2, _ := triclust.Restore(&buf) // t2.Process(day+1, ...) ≡ t.Process(day+1, ...)
//
// Snapshots survive process restarts; cmd/triclustd uses them for its
// -data-dir durability and its PUT /v1/topics/{topic} restore endpoint.
//
// # Migrating from Fit and Stream
//
// Fit and Stream predate Topic and remain as thin adapters:
//
//   - triclust.Fit(c, opts) ≡ NewTopic(nil, WithSolverConfig(...),
//     WithLexicon(...), ...) followed by FitCorpus(c).
//   - triclust.NewStream(users, opts) ≡ NewTopic(users, ...); then
//     Stream.Process ≡ Topic.Process and Stream.UserEstimate ≡
//     Topic.UserEstimate. Stream.Topic returns the underlying Topic, so
//     an existing stream can be snapshotted without rewriting call sites.
//
// The parallel Options/StreamOptions structs map onto functional options:
// Config/OnlineConfig → WithSolverConfig, Lexicon → WithLexicon,
// LexiconHit → WithLexiconHit, Weighting → WithWeighting, MinDF →
// WithMinDF, Tokenizer → WithTokenizer.
//
// # Architecture
//
// Topic is a thin façade over internal/engine, which decomposes the
// pipeline into explicit stages — tokenize → vocabulary → graph build →
// lexicon prior → solve → label — around two long-lived types:
// engine.Model holds the frozen per-topic artifacts (tokenizer,
// vocabulary, cached Sf0 prior, configuration) and engine.Session the
// per-topic mutable state (the Algorithm-2 solver with its user history
// plus reusable problem scaffolding). internal/codec serializes both into
// the snapshot format. The numerical heavy lifting lives in internal/core
// (the paper's Algorithms 1 and 2) on the parallel kernels of
// internal/mat and internal/sparse. cmd/triclustd serves many concurrent
// durable topics over a versioned HTTP API on the same engine.
package triclust

import (
	"errors"
	"fmt"

	"triclust/internal/core"
	"triclust/internal/engine"
	"triclust/internal/lexicon"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// Re-exported data-model types. See the corresponding internal packages
// for details.
type (
	// Corpus is a collection of tweets and users about one topic.
	Corpus = tgraph.Corpus
	// Tweet is one post: text or tokens, author, timestamp, optional
	// retweet target and ground-truth label.
	Tweet = tgraph.Tweet
	// User carries user metadata and an optional ground-truth label.
	User = tgraph.User
	// Config holds the offline hyper-parameters (k, α, β, iterations,
	// §7 extension regularizers).
	Config = core.Config
	// OnlineConfig adds the temporal parameters (γ, τ, window).
	OnlineConfig = core.OnlineConfig
	// Lexicon is a sentiment word list seeding the feature prior Sf0.
	Lexicon = lexicon.Lexicon
	// Sentiment is one item's inferred class with its soft membership,
	// the output of the engine's labeling stage.
	Sentiment = engine.Sentiment
)

// NoLabel marks an unlabeled tweet or user.
const NoLabel = tgraph.NoLabel

// Sentiment classes. Cluster j is aligned with class j through the
// lexicon prior (emotion consistency, Eq. 5).
const (
	Pos = lexicon.Pos
	Neg = lexicon.Neg
	Neu = lexicon.Neu
)

// DefaultConfig returns the paper's offline solver configuration (§5.1:
// k = 3, α = 0.05, β = 0.8).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultOnlineConfig returns the paper's online solver configuration
// (§5.2: α = τ = 0.9, β = 0.8, γ = 0.2, w = 2).
func DefaultOnlineConfig() OnlineConfig { return core.DefaultOnlineConfig() }

// ClassName returns "positive" / "negative" / "neutral".
func ClassName(c int) string {
	switch c {
	case Pos:
		return "positive"
	case Neg:
		return "negative"
	case Neu:
		return "neutral"
	default:
		return fmt.Sprintf("class%d", c)
	}
}

// Options configure Fit.
//
// Deprecated: construct a Topic with functional options instead (see the
// package documentation's migration notes).
type Options struct {
	// Config is the solver configuration (DefaultConfig of the paper's
	// §5.1 when zero-valued fields are left alone).
	Config Config
	// Lexicon seeds the feature prior; nil uses the built-in polarity
	// lexicon.
	Lexicon *Lexicon
	// LexiconHit is the prior probability mass a listed word puts on its
	// class (default 0.8).
	LexiconHit float64
	// Weighting selects TF / TF-IDF / binary features (default TF-IDF).
	Weighting text.Weighting
	// MinDF prunes vocabulary words occurring in fewer tweets
	// (default 2).
	MinDF int
	// Tokenizer controls text normalization for tweets whose Tokens
	// field is nil.
	Tokenizer text.TokenizerOptions
}

// DefaultOptions returns the paper's offline configuration.
func DefaultOptions() Options {
	return Options{
		Config:     core.DefaultConfig(),
		LexiconHit: 0.8,
		Weighting:  text.TFIDF,
		MinDF:      2,
		Tokenizer:  text.DefaultTokenizerOptions(),
	}
}

// Result is the outcome of an offline fit or one online step.
type Result struct {
	// TweetSentiments and UserSentiments follow the input ordering.
	TweetSentiments []Sentiment
	UserSentiments  []Sentiment
	// Vocabulary maps feature indices to words; FeatureSentiments
	// follows it.
	Vocabulary        []string
	FeatureSentiments []Sentiment
	// Iterations and Converged describe the solver run.
	Iterations int
	Converged  bool
	// Raw exposes the factor matrices and loss history for analysis.
	Raw *core.Result

	model *engine.Model
}

// PredictTweets classifies new tweets against the fitted model without
// re-running the solver (NMF fold-in: the tweets' feature rows are
// projected onto the learned feature space Sf·Hpᵀ). Out-of-vocabulary
// words are ignored; a tweet with no known words gets a uniform-confidence
// neutral-ish result.
func (r *Result) PredictTweets(texts []string) ([]Sentiment, error) {
	docs := make([][]string, len(texts))
	for i, s := range texts {
		docs[i] = r.model.Tokenizer().Tokenize(s)
	}
	return r.PredictTokenized(docs)
}

// PredictTokenized is PredictTweets for pre-tokenized input.
func (r *Result) PredictTokenized(docs [][]string) ([]Sentiment, error) {
	if r.model == nil || r.Raw == nil {
		return nil, errors.New("triclust: result carries no model")
	}
	return r.model.Predict(&r.Raw.Factors, docs)
}

// resultFrom adapts an engine outcome to the public Result shape.
func resultFrom(out *engine.Outcome, m *engine.Model) *Result {
	r := &Result{
		TweetSentiments:   out.TweetSentiments,
		UserSentiments:    out.UserSentiments,
		FeatureSentiments: out.FeatureSentiments,
		model:             m,
	}
	if v := m.Vocabulary(); v != nil {
		r.Vocabulary = v.Words()
	}
	if out.Res != nil {
		r.Iterations = out.Res.Iterations
		r.Converged = out.Res.Converged
		r.Raw = out.Res
	}
	return r
}

// Fit runs the offline tri-clustering algorithm (Algorithm 1) on a corpus
// and returns tweet-, user- and feature-level sentiments.
//
// Deprecated: Fit is a thin adapter kept for compatibility; it is
// equivalent to NewTopic(nil, ...) followed by Topic.FitCorpus, which
// additionally gives access to warm-up, prediction and durable snapshots.
func Fit(c *Corpus, o Options) (*Result, error) {
	if c == nil {
		return nil, errors.New("triclust: nil corpus")
	}
	// An unconfigured solver selects the paper's *offline* setup (the
	// engine's own fallback is the online one).
	if o.Config.K == 0 {
		o.Config = core.DefaultConfig()
	}
	t, err := NewTopic(nil,
		WithSolverConfig(core.OnlineConfig{Config: o.Config}),
		WithLexicon(o.Lexicon),
		WithLexiconHit(o.LexiconHit),
		WithWeighting(o.Weighting),
		WithMinDF(o.MinDF),
		WithTokenizer(o.Tokenizer))
	if err != nil {
		return nil, err
	}
	return t.FitCorpus(c)
}

// StreamOptions configure a Stream.
//
// Deprecated: construct a Topic with functional options instead (see the
// package documentation's migration notes).
type StreamOptions struct {
	// Config is the online solver configuration (paper defaults: α=τ=0.9,
	// β=0.8, γ=0.2, w=2).
	Config OnlineConfig
	// Lexicon, LexiconHit, Weighting, Tokenizer as in Options.
	Lexicon    *Lexicon
	LexiconHit float64
	Weighting  text.Weighting
	Tokenizer  text.TokenizerOptions
	// MinDF prunes the vocabulary built from the first batch. The
	// vocabulary is then frozen: later out-of-vocabulary words are
	// ignored (the online algorithm requires comparable Sf(t) matrices;
	// the paper likewise fixes the feature space per topic).
	MinDF int
}

// DefaultStreamOptions returns the paper's online configuration.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{
		Config:     core.DefaultOnlineConfig(),
		LexiconHit: 0.8,
		Weighting:  text.TFIDF,
		MinDF:      2,
		Tokenizer:  text.DefaultTokenizerOptions(),
	}
}

// StreamResult extends Result with the mapping from batch rows to the
// caller's user identifiers.
type StreamResult struct {
	Result
	// ActiveUsers[i] is the global user index of UserSentiments[i].
	ActiveUsers []int
	// Skipped reports that the batch was empty and the step was a
	// well-defined no-op: no solver ran, the vocabulary was not frozen,
	// the timestamp was not consumed and user history is untouched.
	Skipped bool
	// Conformance is the batch's conformance verdict against the topic's
	// learned stream profile, nil while the profile is still warming up.
	// The batch was applied regardless of the verdict: in enforce mode a
	// quarantined batch is rejected with a *ConformanceError instead of
	// producing a StreamResult.
	Conformance *ConformanceVerdict
}

// Stream is the stateful online analyzer (Algorithm 2).
//
// Deprecated: Stream is a thin adapter over Topic kept for compatibility;
// Topic adds vocabulary warm-up, fold-in prediction and durable
// snapshot/restore. Stream.Topic exposes the underlying Topic so existing
// streams can use those without rewriting call sites.
type Stream struct {
	topic *Topic
}

// NewStream creates a stream over a fixed user universe (tweets in later
// batches refer to users by index into users). The options are validated
// like NewTopic's: a negative MinDF, a class count the lexicon prior
// cannot seed, or a non-positive temporal window are rejected.
func NewStream(users []User, opts StreamOptions) (*Stream, error) {
	t, err := NewTopic(users,
		WithSolverConfig(opts.Config),
		WithLexicon(opts.Lexicon),
		WithLexiconHit(opts.LexiconHit),
		WithWeighting(opts.Weighting),
		WithMinDF(opts.MinDF),
		WithTokenizer(opts.Tokenizer))
	if err != nil {
		return nil, err
	}
	return &Stream{topic: t}, nil
}

// Topic returns the underlying Topic, e.g. for Snapshot.
func (s *Stream) Topic() *Topic { return s.topic }

// Process runs one online step on the batch of tweets with timestamp t.
// Timestamps must strictly increase across non-empty batches. The first
// non-empty batch fixes the vocabulary; an empty batch returns a result
// with Skipped set and changes nothing.
func (s *Stream) Process(t int, tweets []Tweet) (*StreamResult, error) {
	return s.topic.Process(t, tweets)
}

// UserEstimate returns the most recent sentiment estimate for a user, or
// ok=false if the user has never appeared.
func (s *Stream) UserEstimate(user int) (Sentiment, bool) {
	return s.topic.UserEstimate(user)
}

// BuiltinLexicon returns the general-purpose polarity lexicon.
func BuiltinLexicon() *Lexicon { return lexicon.Builtin() }

// InduceLexicon rebuilds a topic lexicon from labeled documents (see
// internal/lexicon.Induce).
func InduceLexicon(docs [][]string, labels []int, minCount int, ratio float64) *Lexicon {
	return lexicon.Induce(docs, labels, minCount, ratio)
}
