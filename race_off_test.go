//go:build !race

package triclust_test

// raceEnabled reports whether the race detector instruments this build;
// absolute allocation counts are skipped under it (the detector's sync
// instrumentation allocates and is charged to the measured function).
const raceEnabled = false
